#include "src/cluster/manager.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/sim/actor.h"

namespace cheetah::cluster {

double PhiSuspicion(Nanos gap, Nanos mean_interarrival) {
  // Exponential arrival model: P(silence >= gap) = exp(-gap/mean), so
  // phi = -log10 P = gap / (mean * ln 10). The mean is floored to keep a
  // burst of back-to-back heartbeats from making any silence look alarming.
  const double mean = std::max<double>(static_cast<double>(mean_interarrival),
                                       static_cast<double>(Millis(10)));
  return 0.43429448190325176 * static_cast<double>(gap) / mean;
}

Nanos Manager::EffectiveFailTimeout(uint32_t flaps) const {
  const uint64_t penalty = std::min(flaps, config_.max_flap_penalty);
  return config_.fail_timeout * (1 + penalty);
}

Manager::Manager(rpc::Node& rpc, sim::Storage& storage, raft::Config raft_config,
                 ManagerConfig config, uint64_t seed)
    : rpc_(rpc), config_(config) {
  raft_ = std::make_unique<raft::RaftNode>(rpc, storage, std::move(raft_config), &sm_, seed);
}

sim::Task<Status> Manager::Start() {
  assert(config_.fail_timeout > config_.lease_duration &&
         "a dead server's lease must expire before its removal activates");
  CO_RETURN_IF_ERROR(co_await raft_->Start());
  rpc_.Serve<HeartbeatRequest>([this](sim::NodeId src, HeartbeatRequest req) {
    return HandleHeartbeat(src, std::move(req));
  });
  rpc_.Serve<GetTopologyRequest>([this](sim::NodeId src, GetTopologyRequest req) {
    return HandleGetTopology(src, std::move(req));
  });
  rpc_.Serve<ReportFailureRequest>([this](sim::NodeId src, ReportFailureRequest req) {
    return HandleReport(src, std::move(req));
  });
  rpc_.Serve<RecoveryDoneRequest>([this](sim::NodeId src, RecoveryDoneRequest req) {
    return HandleRecoveryDone(src, std::move(req));
  });
  rpc_.machine().actor().Spawn(LeaderLoop());
  co_return Status::Ok();
}

sim::Task<Status> Manager::MutateTopology(std::function<Status(TopologyMap&)> fn) {
  // Serialize read-modify-write cycles: concurrent mutations (e.g. several
  // RecoveryDone notifications landing together) must not clobber each other.
  while (mutating_) {
    co_await sim::SleepFor(Micros(200));
  }
  mutating_ = true;
  TopologyMap next = sm_.current;
  Status s = fn(next);
  if (s.ok()) {
    next.view = sm_.current.view + 1;
    auto r = co_await raft_->Propose(next.Serialize());
    s = r.ok() ? Status::Ok() : r.status();
    if (s.ok()) {
      ++topology_changes_;
      PushTopologyToAll();
    }
  }
  mutating_ = false;
  co_return s;
}

void Manager::PushTopologyToAll() {
  const std::string serialized = sm_.current.Serialize();
  std::set<sim::NodeId> targets;
  for (const auto& item : sm_.current.meta_crush.items()) {
    targets.insert(static_cast<sim::NodeId>(item.id));
  }
  for (sim::NodeId n : sm_.current.data_servers) {
    targets.insert(n);
  }
  for (const auto& [node, live] : liveness_) {
    targets.insert(node);
  }
  for (sim::NodeId n : targets) {
    TopologyPush push;
    push.serialized_map = serialized;
    rpc_.Notify(n, std::move(push));
  }
}

sim::Task<Status> Manager::Bootstrap(BootstrapSpec spec) {
  if (!raft_->is_leader()) {
    co_return Status::Unavailable("not the manager leader");
  }
  TopologyMap map;
  map.pg_count = spec.pg_count;
  map.replication = spec.replication;
  for (sim::NodeId m : spec.meta_servers) {
    map.meta_crush.AddItem(m);
  }
  map.data_servers = spec.data_servers;

  // Carve physical volumes.
  std::map<sim::NodeId, std::vector<PvId>> free_pvs;
  for (sim::NodeId ds : spec.data_servers) {
    for (uint32_t disk = 0; disk < spec.disks_per_data_server; ++disk) {
      for (uint32_t i = 0; i < spec.pvs_per_disk; ++i) {
        PhysicalVolume pv;
        pv.id = next_pv_id_++;
        pv.data_server = ds;
        pv.disk_index = disk;
        map.pvs[pv.id] = pv;
        free_pvs[ds].push_back(pv.id);
      }
    }
  }

  // Greedy replica-LV count for a hypothetical pool state: how many n-wide
  // LVs (distinct servers) the remaining free PVs could still form. Used to
  // keep EC stripe carving from starving the replica tier below pg_count.
  auto replica_lvs_formable = [&spec](std::map<sim::NodeId, std::vector<PvId>> pool) {
    uint32_t count = 0;
    for (;;) {
      std::vector<sim::NodeId> candidates;
      for (auto& [ds, list] : pool) {
        if (!list.empty()) {
          candidates.push_back(ds);
        }
      }
      if (candidates.size() < spec.replication) {
        return count;
      }
      std::sort(candidates.begin(), candidates.end(), [&](sim::NodeId a, sim::NodeId b) {
        return pool[a].size() > pool[b].size();
      });
      for (uint32_t r = 0; r < spec.replication; ++r) {
        pool[candidates[r]].pop_back();
      }
      ++count;
    }
  };

  // EC stripe LVs first (src/tier): width k+m, spread across as many distinct
  // servers as exist (PVs on the same server repeat only when the cluster is
  // narrower than the stripe). Stripes stop as soon as carving one more would
  // leave the replica tier unable to cover every PG.
  const uint32_t stripe_width = spec.ec_k > 0 ? spec.ec_k + spec.ec_m : 0;
  for (uint32_t s = 0; stripe_width > 0 && s < spec.pg_count; ++s) {
    auto pool = free_pvs;
    LogicalVolume lv;
    lv.id = next_lv_id_;
    lv.ec_stripe = true;
    lv.capacity_bytes = spec.lv_capacity_bytes;
    lv.block_size = spec.block_size;
    while (lv.replicas.size() < stripe_width) {
      std::vector<sim::NodeId> candidates;
      for (auto& [ds, list] : pool) {
        if (!list.empty()) {
          candidates.push_back(ds);
        }
      }
      if (candidates.empty()) {
        break;
      }
      std::sort(candidates.begin(), candidates.end(), [&](sim::NodeId a, sim::NodeId b) {
        return pool[a].size() > pool[b].size();
      });
      for (sim::NodeId ds : candidates) {
        if (lv.replicas.size() == stripe_width) {
          break;
        }
        lv.replicas.push_back(pool[ds].back());
        pool[ds].pop_back();
      }
    }
    if (lv.replicas.size() < stripe_width ||
        replica_lvs_formable(pool) < spec.pg_count) {
      break;
    }
    ++next_lv_id_;
    free_pvs = std::move(pool);
    map.ec_vgs[s % spec.pg_count].push_back(lv.id);
    map.lvs[lv.id] = std::move(lv);
  }

  // Group into logical volumes: n replicas on n distinct data servers.
  for (;;) {
    std::vector<sim::NodeId> candidates;
    for (auto& [ds, list] : free_pvs) {
      if (!list.empty()) {
        candidates.push_back(ds);
      }
    }
    if (candidates.size() < spec.replication) {
      break;
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](sim::NodeId a, sim::NodeId b) {
                return free_pvs[a].size() > free_pvs[b].size();
              });
    LogicalVolume lv;
    lv.id = next_lv_id_++;
    lv.capacity_bytes = spec.lv_capacity_bytes;
    lv.block_size = spec.block_size;
    for (uint32_t r = 0; r < spec.replication; ++r) {
      sim::NodeId ds = candidates[r];
      lv.replicas.push_back(free_pvs[ds].back());
      free_pvs[ds].pop_back();
    }
    map.lvs[lv.id] = lv;
  }

  // Every PG needs at least one logical volume in its VG, or its objects
  // would have nowhere to live (VGs are exclusive to their PG, §4.2).
  size_t replica_lvs = 0;
  for (const auto& [id, lv] : map.lvs) {
    replica_lvs += lv.ec_stripe ? 0 : 1;
  }
  if (replica_lvs < map.pg_count) {
    co_return Status::InvalidArgument(
        "bootstrap needs at least pg_count logical volumes (" +
        std::to_string(replica_lvs) + " < " + std::to_string(map.pg_count) + ")");
  }
  // Assign replica logical volumes to VGs round-robin; every PG gets a VG
  // entry. EC stripe LVs were already assigned to ec_vgs above.
  for (PgId pg = 0; pg < map.pg_count; ++pg) {
    map.vgs[pg] = {};
  }
  PgId pg = 0;
  for (const auto& [id, lv] : map.lvs) {
    if (lv.ec_stripe) {
      continue;
    }
    map.vgs[pg % map.pg_count].push_back(id);
    ++pg;
  }
  co_return co_await MutateTopology([&map](TopologyMap& next) {
    next = std::move(map);
    return Status::Ok();
  });
}

sim::Task<Status> Manager::AddMetaServer(sim::NodeId node) {
  if (!raft_->is_leader()) {
    co_return Status::Unavailable("not the manager leader");
  }
  co_return co_await MutateTopology([node](TopologyMap& next) {
    if (next.meta_crush.HasItem(node)) {
      return Status::AlreadyExists("meta server already mapped");
    }
    next.meta_crush.AddItem(node);
    return Status::Ok();
  });
}

sim::Task<Status> Manager::AddDataServer(sim::NodeId node, uint32_t disks,
                                         uint32_t pvs_per_disk) {
  if (!raft_->is_leader()) {
    co_return Status::Unavailable("not the manager leader");
  }
  co_return co_await MutateTopology([this, node, disks, pvs_per_disk](TopologyMap& next) {
  if (std::find(next.data_servers.begin(), next.data_servers.end(), node) ==
      next.data_servers.end()) {
    next.data_servers.push_back(node);
  }
  // Each new LV anchors one fresh PV on the new server plus n-1 fresh PVs on
  // the least-loaded existing servers, and joins a VG round-robin — new
  // objects can land on new volumes while existing objects stay put (§4.2).
  const uint32_t new_lvs = disks * pvs_per_disk;
  uint64_t lv_capacity = GiB(1);
  uint32_t block_size = 4096;
  if (!next.lvs.empty()) {
    lv_capacity = next.lvs.begin()->second.capacity_bytes;
    block_size = next.lvs.begin()->second.block_size;
  }
  std::map<sim::NodeId, size_t> load;
  for (sim::NodeId ds : next.data_servers) {
    load[ds] = 0;
  }
  for (const auto& [id, pv] : next.pvs) {
    ++load[pv.data_server];
  }
  PgId vg_cursor = 0;
  for (uint32_t i = 0; i < new_lvs; ++i) {
    LogicalVolume lv;
    lv.id = next_lv_id_++;
    lv.capacity_bytes = lv_capacity;
    lv.block_size = block_size;
    // Anchor on the new server.
    auto make_pv = [&](sim::NodeId ds, uint32_t disk) {
      PhysicalVolume pv;
      pv.id = next_pv_id_++;
      pv.data_server = ds;
      pv.disk_index = disk;
      next.pvs[pv.id] = pv;
      ++load[ds];
      return pv.id;
    };
    lv.replicas.push_back(make_pv(node, i % std::max(1u, disks)));
    std::vector<sim::NodeId> others;
    for (sim::NodeId ds : next.data_servers) {
      if (ds != node) {
        others.push_back(ds);
      }
    }
    std::sort(others.begin(), others.end(),
              [&](sim::NodeId a, sim::NodeId b) { return load[a] < load[b]; });
    for (uint32_t r = 1; r < next.replication && r - 1 < others.size(); ++r) {
      lv.replicas.push_back(make_pv(others[r - 1], 0));
    }
    if (lv.replicas.size() < next.replication) {
      return Status::InvalidArgument("not enough data servers for replication");
    }
    next.lvs[lv.id] = lv;
    next.vgs[vg_cursor % next.pg_count].push_back(lv.id);
    ++vg_cursor;
  }
  return Status::Ok();
  });
}

sim::Task<Status> Manager::DrainMetaServer(sim::NodeId node) {
  if (!raft_->is_leader()) {
    co_return Status::Unavailable("not the manager leader");
  }
  if (!sm_.current.meta_crush.HasItem(node)) {
    co_return Status::NotFound("not a mapped meta server");
  }
  if (sm_.current.meta_crush.size() <= 1) {
    co_return Status::InvalidArgument("cannot drain the last meta server");
  }
  if (!sm_.current.draining_metas.empty() && !sm_.current.IsDraining(node)) {
    co_return Status::Unavailable("another drain is in progress");
  }
  co_return co_await RunDrain(node);
}

sim::Task<Status> Manager::RunDrain(sim::NodeId node) {
  if (drain_running_) {
    co_return Status::Unavailable("a drain is already running");
  }
  drain_running_ = true;
  Status result = Status::Internal("drain did not converge");
  // Each round re-derives the step from the replicated topology, so the loop
  // is safe to enter at any phase (fresh drain, leader-change resumption, or
  // a replan after a concurrent failure changed the membership mid-drain).
  for (int round = 0; round < 50; ++round) {
    if (!raft_->is_leader()) {
      result = Status::Unavailable("lost manager leadership mid-drain");
      break;
    }
    if (!sm_.current.meta_crush.HasItem(node)) {
      // Gone from the map already: a prior cutover committed (retired) or
      // the failure detector evicted the node mid-drain (drain moot).
      result = sm_.current.IsRetired(node)
                   ? Status::Ok()
                   : Status::Unavailable("drain target evicted mid-drain");
      break;
    }

    // Prepare: publish a migration entry for every PG the node serves whose
    // post-removal replica set gains a member. PGs whose post-set is a subset
    // of today's members need no catchup (the survivors already hold them).
    Status s = co_await MutateTopology([node](TopologyMap& next) {
      if (!next.meta_crush.HasItem(node)) {
        return Status::Unavailable("drain target gone");
      }
      bool changed = false;
      if (!next.IsDraining(node)) {
        next.draining_metas.push_back(node);
        changed = true;
      }
      crush::Map after = next.meta_crush;
      after.RemoveItem(node);
      if (after.size() == 0) {
        return Status::InvalidArgument("cannot drain the last meta server");
      }
      for (PgId pg = 0; pg < next.pg_count; ++pg) {
        auto cur = next.MetaServersOf(pg);
        if (std::find(cur.begin(), cur.end(), node) == cur.end()) {
          continue;
        }
        auto post = after.Select(pg, next.replication);
        sim::NodeId dest = sim::kInvalidNode;
        for (sim::NodeId cand : post) {
          if (std::find(cur.begin(), cur.end(), cand) == cur.end()) {
            dest = cand;
            break;
          }
        }
        if (dest == sim::kInvalidNode) {
          continue;
        }
        auto it = next.migrations.find(pg);
        if (it != next.migrations.end() && it->second.destination == dest) {
          continue;  // entry survives a replan round, phase intact
        }
        PgMigration mig;
        mig.source = next.PrimaryOf(pg);
        mig.destination = dest;
        next.migrations[pg] = mig;
        changed = true;
      }
      return changed ? Status::Ok() : Status::AlreadyExists("no change");
    });
    if (!s.ok() && s.code() != ErrorCode::kAlreadyExists) {
      co_await sim::SleepFor(config_.drain_retry_delay);
      continue;
    }

    // DoubleWrite then Catchup: two global phase bumps. From the DoubleWrite
    // view on, the source forwards every write to the destination; catchup
    // pulls are gated on that view so no write can slip between the scan and
    // the forwarding turning on.
    for (MigrationPhase target :
         {MigrationPhase::kDoubleWrite, MigrationPhase::kCatchup}) {
      s = co_await MutateTopology([node, target](TopologyMap& next) {
        if (!next.IsDraining(node)) {
          return Status::Unavailable("drain aborted");
        }
        bool changed = false;
        for (auto& [pg, mig] : next.migrations) {
          if (static_cast<uint8_t>(mig.phase) < static_cast<uint8_t>(target)) {
            mig.phase = target;
            changed = true;
          }
        }
        return changed ? Status::Ok() : Status::AlreadyExists("no change");
      });
      if (!s.ok() && s.code() != ErrorCode::kAlreadyExists) {
        break;
      }
    }
    if (!s.ok() && s.code() != ErrorCode::kAlreadyExists) {
      co_await sim::SleepFor(config_.drain_retry_delay);
      continue;
    }

    // Command every destination to pull its PG from the source. Retries ride
    // inside the round; a destination that died mid-catchup loses its entry
    // (HandleMetaFailure) and the next round replans it.
    const uint64_t catchup_view = sm_.current.view;
    const std::map<PgId, PgMigration> entries = sm_.current.migrations;
    std::map<PgId, sim::NodeId> caught;
    bool all_caught = true;
    for (const auto& [pg, mig] : entries) {
      bool done = false;
      for (int attempt = 0; attempt < 5 && !done; ++attempt) {
        const PgMigration* cur = sm_.current.MigrationOf(pg);
        if (cur == nullptr || cur->destination != mig.destination) {
          break;  // entry dropped or replanned; next round handles it
        }
        MigratePgRequest req;
        req.view = catchup_view;
        req.pg = pg;
        req.source = cur->source;
        auto r = co_await rpc_.Call(mig.destination, std::move(req),
                                    config_.migrate_rpc_timeout);
        if (r.ok()) {
          done = true;
        } else {
          co_await sim::SleepFor(config_.drain_retry_delay);
        }
      }
      if (done) {
        caught[pg] = mig.destination;
      } else {
        all_caught = false;
      }
    }
    if (!all_caught) {
      co_await sim::SleepFor(config_.drain_retry_delay);
      continue;
    }

    // Cutover: one atomic view bump removes the node from CRUSH, clears the
    // migration entries, and retires it — but only if the entry set is still
    // exactly the set that finished catchup. Any divergence (a concurrent
    // failure replanned an entry under us) restarts the round instead.
    s = co_await MutateTopology([node, &caught](TopologyMap& next) {
      if (!next.meta_crush.HasItem(node) || !next.IsDraining(node)) {
        return Status::Unavailable("drain aborted");
      }
      if (next.migrations.size() != caught.size()) {
        return Status::Unavailable("migration set changed during catchup");
      }
      for (const auto& [pg, dest] : caught) {
        const PgMigration* cur = next.MigrationOf(pg);
        if (cur == nullptr || cur->destination != dest) {
          return Status::Unavailable("migration set changed during catchup");
        }
      }
      next.meta_crush.RemoveItem(node);
      next.migrations.clear();
      next.draining_metas.erase(
          std::remove(next.draining_metas.begin(), next.draining_metas.end(), node),
          next.draining_metas.end());
      if (!next.IsRetired(node)) {
        next.retired_metas.push_back(node);
      }
      return Status::Ok();
    });
    if (s.ok()) {
      ++drains_completed_;
      LOG_INFO << "manager: drain of " << node << " complete, node retired";
      result = Status::Ok();
      break;
    }
    co_await sim::SleepFor(config_.drain_retry_delay);
  }
  drain_running_ = false;
  co_return result;
}

sim::Task<> Manager::LeaderLoop() {
  bool was_leader = false;
  for (;;) {
    co_await sim::SleepFor(config_.check_interval);
    const bool leader_now = raft_->is_leader();
    if (leader_now && !was_leader) {
      // Liveness collected while we were a follower (e.g. during boot) is
      // stale; grant every known server a grace period before judging it.
      // prev_arrival resets too so the follower-era gap never enters the
      // phi window as a fake inter-arrival sample.
      const Nanos now = rpc_.machine().loop().Now();
      for (auto& [node, live] : liveness_) {
        live.last_seen = now;
        live.prev_arrival = 0;
      }
      // A drain interrupted by the old leader's fall is replicated state;
      // pick it back up. RunDrain is phase-idempotent (it re-derives the
      // step from the topology), so resumption is safe at any point.
      if (!sm_.current.draining_metas.empty() && !drain_running_) {
        const sim::NodeId draining = sm_.current.draining_metas.front();
        rpc_.machine().actor().Spawn(
            [](Manager* self, sim::NodeId node) -> sim::Task<> {
              (void)co_await self->RunDrain(node);
            }(this, draining));
      }
    }
    was_leader = leader_now;
    if (!leader_now || sm_.current.pg_count == 0) {
      continue;
    }
    co_await CheckFailures();
  }
}

sim::Task<> Manager::CheckFailures() {
  const Nanos now = rpc_.machine().loop().Now();
  std::vector<std::pair<sim::NodeId, ServerKind>> failed;
  for (const auto& [node, live] : liveness_) {
    if (live.kind == ServerKind::kClientProxy) {
      continue;  // proxy crashes are handled by meta servers (§5.3)
    }
    if (handling_failure_.contains(node)) {
      continue;
    }
    const Nanos gap = now - live.last_seen;
    if (gap <= EffectiveFailTimeout(live.flaps)) {
      continue;  // within the (flap-stretched) hard floor
    }
    // Past the floor: consult the accrual detector. With a healthy heartbeat
    // history the phi threshold lands at ~fail_timeout; a node whose
    // heartbeats were already slow (gray network) has a proportionally larger
    // mean and must stay silent proportionally longer before eviction. Fewer
    // than 3 samples -> no usable distribution, fall back to the plain floor.
    if (live.intervals.size() >= 3) {
      Nanos sum = 0;
      for (Nanos iv : live.intervals) {
        sum += iv;
      }
      const Nanos mean = sum / static_cast<Nanos>(live.intervals.size());
      if (PhiSuspicion(gap, mean) < config_.phi_threshold) {
        ++flap_suppressions_;
        continue;  // silence still plausible for this node's cadence
      }
    }
    failed.emplace_back(node, live.kind);
  }
  for (auto [node, kind] : failed) {
    handling_failure_.insert(node);
    LOG_INFO << "manager: declaring " << node << " failed";
    ++evictions_;
    if (kind == ServerKind::kMetaServer) {
      co_await HandleMetaFailure(node);
    } else {
      co_await HandleDataFailure(node);
    }
    liveness_.erase(node);
    handling_failure_.erase(node);
  }

  // Re-admit recovered meta servers: a node absent from the map but
  // heartbeating again has returned from its eviction. Its stale local PG
  // state is safe to bring back — adoption re-pulls across the view gap and
  // merges, with deletes carried as tombstones (core/meta_server.cc).
  // Draining and retired nodes are deliberately absent: re-admitting them
  // would undo a decommission the moment the drained node heartbeats.
  std::vector<sim::NodeId> returned;
  for (const auto& [node, live] : liveness_) {
    if (live.kind == ServerKind::kMetaServer && !handling_failure_.contains(node) &&
        now - live.last_seen <= config_.fail_timeout &&
        !sm_.current.meta_crush.HasItem(node) && !sm_.current.IsDraining(node) &&
        !sm_.current.IsRetired(node)) {
      returned.push_back(node);
    }
  }
  for (sim::NodeId node : returned) {
    LOG_INFO << "manager: re-admitting meta server " << node;
    (void)co_await MutateTopology([node](TopologyMap& next) {
      if (next.meta_crush.HasItem(node)) {
        return Status::AlreadyExists("meta server already mapped");
      }
      next.meta_crush.AddItem(node);
      return Status::Ok();
    });
  }
}

sim::Task<> Manager::HandleMetaFailure(sim::NodeId node) {
  if (!sm_.current.meta_crush.HasItem(node)) {
    co_return;
  }
  if (sm_.current.meta_crush.size() <= 1) {
    LOG_WARN << "manager: refusing to remove the last meta server " << node;
    co_return;
  }
  (void)co_await MutateTopology([node](TopologyMap& next) {
    if (!next.meta_crush.HasItem(node)) {
      return Status::AlreadyExists("already removed");
    }
    next.meta_crush.RemoveItem(node);
    // Repair any in-flight drain the crash intersects. A dead draining node
    // aborts its own drain (entries cleared, not retired — if it returns it
    // may re-admit); a dead migration *destination* drops just its entries
    // (the drain driver replans them); a dead *source* re-points catchup at
    // the PG's post-removal primary.
    if (next.IsDraining(node)) {
      next.migrations.clear();
      next.draining_metas.erase(
          std::remove(next.draining_metas.begin(), next.draining_metas.end(), node),
          next.draining_metas.end());
    } else {
      for (auto it = next.migrations.begin(); it != next.migrations.end();) {
        if (it->second.destination == node) {
          it = next.migrations.erase(it);
          continue;
        }
        if (it->second.source == node) {
          it->second.source = next.PrimaryOf(it->first);
        }
        ++it;
      }
    }
    return Status::Ok();
  });
  // The new primaries pull their PGs' MetaX from the surviving replicas when
  // they observe the new view (core/meta_server.cc). CRUSH Select always
  // fills the replica set from the remaining members, so the under-replicated
  // window closes as soon as the new members' adoption pulls complete —
  // that re-replication runs as background/maintenance QoS traffic.
}

sim::Task<> Manager::HandleDataFailure(sim::NodeId node) {
  struct Replacement {
    LvId lv;
    PvId source_pv;
    sim::NodeId source_server;
    uint32_t source_disk;
    PvId target_pv;
    sim::NodeId target_server;
    uint32_t target_disk;
  };
  std::vector<Replacement> plans;
  bool known_server = false;

  Status ms = co_await MutateTopology([&](TopologyMap& next) {
  bool hosts_volumes = false;
  known_server =
      std::find(next.data_servers.begin(), next.data_servers.end(), node) !=
      next.data_servers.end();
  std::map<sim::NodeId, size_t> load;
  for (sim::NodeId ds : next.data_servers) {
    if (ds != node) {
      load[ds] = 0;
    }
  }
  for (const auto& [id, pv] : next.pvs) {
    if (pv.data_server != node && load.contains(pv.data_server)) {
      ++load[pv.data_server];
    }
  }

  for (auto& [lv_id, lv] : next.lvs) {
    for (PvId& pv_id : lv.replicas) {
      PhysicalVolume& old_pv = next.pvs[pv_id];
      if (old_pv.data_server != node) {
        continue;
      }
      hosts_volumes = true;
      // Choose the least-loaded server not already hosting this LV.
      sim::NodeId target = sim::kInvalidNode;
      size_t best = SIZE_MAX;
      for (const auto& [ds, l] : load) {
        const bool holds_replica = std::any_of(
            lv.replicas.begin(), lv.replicas.end(), [&](PvId r) {
              return r != pv_id && next.pvs[r].data_server == ds;
            });
        if (!holds_replica && l < best) {
          best = l;
          target = ds;
        }
      }
      if (target == sim::kInvalidNode) {
        lv.writable = false;  // cannot re-replicate; degraded
        continue;
      }
      // Pick a healthy source replica.
      PvId source = 0;
      for (PvId r : lv.replicas) {
        if (r != pv_id && next.pvs[r].healthy && next.pvs[r].data_server != node) {
          source = r;
          break;
        }
      }
      PhysicalVolume fresh;
      fresh.id = next_pv_id_++;
      fresh.data_server = target;
      fresh.disk_index = old_pv.disk_index;
      fresh.healthy = false;  // until recovery completes
      next.pvs[fresh.id] = fresh;
      ++load[target];
      old_pv.healthy = false;
      lv.writable = false;  // readonly until recovered (§5.3)
      if (source != 0) {
        plans.push_back(Replacement{lv_id, source, next.pvs[source].data_server,
                                    next.pvs[source].disk_index, fresh.id, target,
                                    fresh.disk_index});
      }
      pv_id = fresh.id;
    }
  }
  next.data_servers.erase(
      std::remove(next.data_servers.begin(), next.data_servers.end(), node),
      next.data_servers.end());
  if (!hosts_volumes && !known_server) {
    return Status::NotFound("not a data server we know");
  }
  return Status::Ok();
  });
  if (!ms.ok()) {
    co_return;
  }

  // Kick off parallel re-replication on the replacement servers.
  for (const auto& plan : plans) {
    RecoverVolumeRequest req;
    req.view = sm_.current.view;
    req.lv = plan.lv;
    req.source_pv = plan.source_pv;
    req.source_server = plan.source_server;
    req.source_disk = plan.source_disk;
    req.target_pv = plan.target_pv;
    req.target_disk = plan.target_disk;
    rpc_.Notify(plan.target_server, std::move(req));
  }
}

sim::Task<Result<HeartbeatReply>> Manager::HandleHeartbeat(sim::NodeId src,
                                                           HeartbeatRequest req) {
  const Nanos now = rpc_.machine().loop().Now();
  Liveness& live = liveness_[req.node];
  live.kind = req.kind;
  if (live.prev_arrival != 0) {
    live.intervals.push_back(now - live.prev_arrival);
    while (live.intervals.size() > config_.phi_window) {
      live.intervals.pop_front();
    }
    // A gap that crossed half the eviction floor and then healed is a flap:
    // stretch this node's effective timeout so repeated near-death episodes
    // (gray links) don't each race the detector. Quiet time decays it.
    if (now - live.prev_arrival > config_.fail_timeout / 2) {
      live.flaps = std::min(live.flaps + 1, config_.max_flap_penalty);
      live.last_flap = now;
    } else if (live.flaps > 0 && now - live.last_flap > config_.flap_decay) {
      live.flaps = 0;
    }
  }
  live.prev_arrival = now;
  live.last_seen = now;
  HeartbeatReply reply;
  reply.current_view = sm_.current.view;
  reply.is_leader = raft_->is_leader();
  reply.lease_duration = raft_->is_leader() ? config_.lease_duration : 0;
  co_return reply;
}

sim::Task<Result<GetTopologyReply>> Manager::HandleGetTopology(sim::NodeId src,
                                                               GetTopologyRequest req) {
  GetTopologyReply reply;
  if (req.have_view >= sm_.current.view) {
    reply.changed = false;
    co_return reply;
  }
  reply.changed = true;
  reply.serialized_map = sm_.current.Serialize();
  co_return reply;
}

sim::Task<Result<ReportFailureReply>> Manager::HandleReport(sim::NodeId src,
                                                            ReportFailureRequest req) {
  // A report ages the suspect's liveness so the next check acts quickly; the
  // manager still relies on its own heartbeat evidence (§5.3).
  auto it = liveness_.find(req.suspect);
  if (it != liveness_.end()) {
    const Nanos now = rpc_.machine().loop().Now();
    const Nanos aged = now - config_.fail_timeout / 2;
    it->second.last_seen = std::min(it->second.last_seen, aged);
  }
  co_return ReportFailureReply{};
}

sim::Task<Result<RecoveryDoneReply>> Manager::HandleRecoveryDone(sim::NodeId src,
                                                                 RecoveryDoneRequest req) {
  if (!raft_->is_leader()) {
    co_return Status::Unavailable("not the manager leader");
  }
  Status s = co_await MutateTopology([&req](TopologyMap& next) {
    auto lv_it = next.lvs.find(req.lv);
    if (lv_it == next.lvs.end()) {
      return Status::NotFound("unknown lv");
    }
    auto pv_it = next.pvs.find(req.target_pv);
    if (pv_it != next.pvs.end()) {
      pv_it->second.healthy = true;
    }
    // Writable again once every replica is healthy.
    bool all_healthy = true;
    for (PvId r : lv_it->second.replicas) {
      all_healthy &= next.pvs[r].healthy;
    }
    lv_it->second.writable = all_healthy;
    return Status::Ok();
  });
  if (!s.ok()) {
    co_return s;
  }
  co_return RecoveryDoneReply{};
}

}  // namespace cheetah::cluster
