#include "src/cluster/topology.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace cheetah::cluster {

std::vector<PgId> TopologyMap::PgsOf(sim::NodeId node) const {
  std::vector<PgId> out;
  for (PgId pg = 0; pg < pg_count; ++pg) {
    auto servers = MetaServersOf(pg);
    if (std::find(servers.begin(), servers.end(), node) != servers.end()) {
      out.push_back(pg);
    }
  }
  return out;
}

std::vector<PgId> TopologyMap::PrimaryPgsOf(sim::NodeId node) const {
  std::vector<PgId> out;
  for (PgId pg = 0; pg < pg_count; ++pg) {
    if (PrimaryOf(pg) == node) {
      out.push_back(pg);
    }
  }
  return out;
}

std::string TopologyMap::Serialize() const {
  std::string body;
  PutVarint64(&body, view);
  PutVarint64(&body, pg_count);
  PutVarint64(&body, replication);
  PutVarint64(&body, meta_crush.items().size());
  for (const auto& item : meta_crush.items()) {
    PutVarint64(&body, item.id);
    PutFixed64(&body, static_cast<uint64_t>(item.weight * 1000.0));
  }
  PutVarint64(&body, data_servers.size());
  for (sim::NodeId n : data_servers) {
    PutVarint64(&body, n);
  }
  PutVarint64(&body, pvs.size());
  for (const auto& [id, pv] : pvs) {
    PutVarint64(&body, pv.id);
    PutVarint64(&body, pv.data_server);
    PutVarint64(&body, pv.disk_index);
    body.push_back(pv.healthy ? 1 : 0);
  }
  PutVarint64(&body, lvs.size());
  for (const auto& [id, lv] : lvs) {
    PutVarint64(&body, lv.id);
    PutVarint64(&body, lv.replicas.size());
    for (PvId pv : lv.replicas) {
      PutVarint64(&body, pv);
    }
    body.push_back(lv.writable ? 1 : 0);
    body.push_back(lv.ec_stripe ? 1 : 0);
    PutVarint64(&body, lv.capacity_bytes);
    PutVarint64(&body, lv.block_size);
  }
  PutVarint64(&body, vgs.size());
  for (const auto& [pg, lv_list] : vgs) {
    PutVarint64(&body, pg);
    PutVarint64(&body, lv_list.size());
    for (LvId lv : lv_list) {
      PutVarint64(&body, lv);
    }
  }
  PutVarint64(&body, ec_vgs.size());
  for (const auto& [pg, lv_list] : ec_vgs) {
    PutVarint64(&body, pg);
    PutVarint64(&body, lv_list.size());
    for (LvId lv : lv_list) {
      PutVarint64(&body, lv);
    }
  }
  PutVarint64(&body, migrations.size());
  for (const auto& [pg, mig] : migrations) {
    PutVarint64(&body, pg);
    body.push_back(static_cast<char>(mig.phase));
    PutVarint64(&body, mig.source);
    PutVarint64(&body, mig.destination);
  }
  PutVarint64(&body, draining_metas.size());
  for (sim::NodeId n : draining_metas) {
    PutVarint64(&body, n);
  }
  PutVarint64(&body, retired_metas.size());
  for (sim::NodeId n : retired_metas) {
    PutVarint64(&body, n);
  }
  std::string out;
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<TopologyMap> TopologyMap::Deserialize(std::string_view data) {
  uint32_t crc = 0;
  if (!GetFixed32(&data, &crc) || Crc32c(data) != crc) {
    return Status::Corruption("topology checksum");
  }
  TopologyMap map;
  uint64_t v = 0;
  auto need = [&](bool ok) { return ok ? Status::Ok() : Status::Corruption("topology"); };
  RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
  map.view = v;
  RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
  map.pg_count = static_cast<uint32_t>(v);
  RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
  map.replication = static_cast<uint32_t>(v);

  uint64_t n = 0;
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0, w = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &id) && GetFixed64(&data, &w)));
    map.meta_crush.AddItem(static_cast<crush::ItemId>(id), static_cast<double>(w) / 1000.0);
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
    map.data_servers.push_back(static_cast<sim::NodeId>(v));
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    PhysicalVolume pv;
    uint64_t id = 0, ds = 0, disk = 0;
    RETURN_IF_ERROR(
        need(GetVarint64(&data, &id) && GetVarint64(&data, &ds) && GetVarint64(&data, &disk)));
    if (data.empty()) {
      return Status::Corruption("topology pv flags");
    }
    pv.id = static_cast<PvId>(id);
    pv.data_server = static_cast<sim::NodeId>(ds);
    pv.disk_index = static_cast<uint32_t>(disk);
    pv.healthy = data.front() != 0;
    data.remove_prefix(1);
    map.pvs[pv.id] = pv;
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    LogicalVolume lv;
    uint64_t id = 0, nr = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &id) && GetVarint64(&data, &nr)));
    lv.id = static_cast<LvId>(id);
    for (uint64_t r = 0; r < nr; ++r) {
      RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
      lv.replicas.push_back(static_cast<PvId>(v));
    }
    if (data.size() < 2) {
      return Status::Corruption("topology lv flags");
    }
    lv.writable = data.front() != 0;
    data.remove_prefix(1);
    lv.ec_stripe = data.front() != 0;
    data.remove_prefix(1);
    RETURN_IF_ERROR(need(GetVarint64(&data, &lv.capacity_bytes)));
    RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
    lv.block_size = static_cast<uint32_t>(v);
    map.lvs[lv.id] = lv;
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pg = 0, count = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &pg) && GetVarint64(&data, &count)));
    std::vector<LvId>& list = map.vgs[static_cast<PgId>(pg)];
    for (uint64_t c = 0; c < count; ++c) {
      RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
      list.push_back(static_cast<LvId>(v));
    }
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pg = 0, count = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &pg) && GetVarint64(&data, &count)));
    std::vector<LvId>& list = map.ec_vgs[static_cast<PgId>(pg)];
    for (uint64_t c = 0; c < count; ++c) {
      RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
      list.push_back(static_cast<LvId>(v));
    }
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pg = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &pg)));
    if (data.empty()) {
      return Status::Corruption("topology migration phase");
    }
    PgMigration mig;
    mig.phase = static_cast<MigrationPhase>(data.front());
    data.remove_prefix(1);
    uint64_t src = 0, dst = 0;
    RETURN_IF_ERROR(need(GetVarint64(&data, &src) && GetVarint64(&data, &dst)));
    mig.source = static_cast<sim::NodeId>(src);
    mig.destination = static_cast<sim::NodeId>(dst);
    map.migrations[static_cast<PgId>(pg)] = mig;
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
    map.draining_metas.push_back(static_cast<sim::NodeId>(v));
  }
  RETURN_IF_ERROR(need(GetVarint64(&data, &n)));
  for (uint64_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(need(GetVarint64(&data, &v)));
    map.retired_metas.push_back(static_cast<sim::NodeId>(v));
  }
  return map;
}

bool TopologyMap::SameShape(const TopologyMap& other) const {
  return view == other.view && pg_count == other.pg_count &&
         replication == other.replication &&
         meta_crush.items().size() == other.meta_crush.items().size() &&
         data_servers == other.data_servers && pvs.size() == other.pvs.size() &&
         lvs.size() == other.lvs.size() && vgs.size() == other.vgs.size() &&
         ec_vgs.size() == other.ec_vgs.size() &&
         migrations.size() == other.migrations.size() &&
         draining_metas == other.draining_metas &&
         retired_metas == other.retired_metas;
}

}  // namespace cheetah::cluster
