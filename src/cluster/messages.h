// Control-plane RPC messages: manager <-> servers/proxies, and the
// volume-recovery commands the manager issues to data servers.
//
// Every message type is a non-aggregate (defaulted constructor) per the
// GCC 12 caution in src/sim/task.h.
#ifndef SRC_CLUSTER_MESSAGES_H_
#define SRC_CLUSTER_MESSAGES_H_

#include <cstdint>
#include <string>

#include "src/cluster/topology.h"
#include "src/common/units.h"
#include "src/sim/network.h"

namespace cheetah::cluster {

enum class ServerKind : uint8_t { kMetaServer, kDataServer, kClientProxy };

struct HeartbeatReply {
  HeartbeatReply() = default;
  uint64_t current_view = 0;
  Nanos lease_duration = 0;  // 0 = not the manager leader
  bool is_leader = false;
  size_t wire_size() const { return 32; }
};
struct HeartbeatRequest {
  using Response = HeartbeatReply;
  HeartbeatRequest() = default;
  sim::NodeId node = sim::kInvalidNode;
  ServerKind kind = ServerKind::kMetaServer;
  uint64_t view = 0;
  size_t wire_size() const { return 24; }
};

struct GetTopologyReply {
  GetTopologyReply() = default;
  bool changed = false;          // false => caller is already current
  std::string serialized_map;    // TopologyMap::Serialize()
  size_t wire_size() const { return 16 + serialized_map.size(); }
};
struct GetTopologyRequest {
  using Response = GetTopologyReply;
  GetTopologyRequest() = default;
  uint64_t have_view = 0;
  size_t wire_size() const { return 16; }
};

struct ReportFailureReply {
  ReportFailureReply() = default;
  size_t wire_size() const { return 8; }
};
struct ReportFailureRequest {
  using Response = ReportFailureReply;
  ReportFailureRequest() = default;
  sim::NodeId suspect = sim::kInvalidNode;
  size_t wire_size() const { return 16; }
};

// Pushed (fire-and-forget) by the manager leader after a view change.
struct TopologyPushReply {
  TopologyPushReply() = default;
  size_t wire_size() const { return 8; }
};
struct TopologyPush {
  using Response = TopologyPushReply;
  TopologyPush() = default;
  std::string serialized_map;
  size_t wire_size() const { return 16 + serialized_map.size(); }
};

// Manager -> data server: rebuild `target_pv` (on the receiver) by copying
// the contents of `source_pv` (on `source_server`).
struct RecoverVolumeReply {
  RecoverVolumeReply() = default;
  uint64_t bytes_copied = 0;
  size_t wire_size() const { return 16; }
};
struct RecoverVolumeRequest {
  using Response = RecoverVolumeReply;
  RecoverVolumeRequest() = default;
  uint64_t view = 0;
  LvId lv = 0;
  PvId source_pv = 0;
  sim::NodeId source_server = sim::kInvalidNode;
  uint32_t source_disk = 0;
  PvId target_pv = 0;
  uint32_t target_disk = 0;
  size_t wire_size() const { return 52; }
};

// Manager -> migration destination: pull `pg`'s full history (MetaX rows,
// PG/PX logs, OPDONE markers) from `source` and merge it locally. Sent during
// the Catchup phase of a drain; the reply arriving means the destination
// holds everything the source had when the pull finished — double-write
// covers the rest, so cutover is safe.
struct MigratePgReply {
  MigratePgReply() = default;
  uint64_t kvs_pulled = 0;
  size_t wire_size() const { return 16; }
};
struct MigratePgRequest {
  using Response = MigratePgReply;
  MigratePgRequest() = default;
  uint64_t view = 0;
  PgId pg = 0;
  sim::NodeId source = sim::kInvalidNode;
  size_t wire_size() const { return 32; }
};

// Data server -> manager: volume recovery finished.
struct RecoveryDoneReply {
  RecoveryDoneReply() = default;
  size_t wire_size() const { return 8; }
};
struct RecoveryDoneRequest {
  using Response = RecoveryDoneReply;
  RecoveryDoneRequest() = default;
  LvId lv = 0;
  PvId target_pv = 0;
  uint64_t bytes_copied = 0;
  size_t wire_size() const { return 32; }
};

}  // namespace cheetah::cluster

#endif  // SRC_CLUSTER_MESSAGES_H_
