// The system manager (§5.1): an odd number of manager processes running Raft
// as one reliable central manager. It owns the topology map (server
// membership, VG/LV/PV layout, view number) and the lease clock, detects
// failures from missed heartbeats, and coordinates replacement + recovery.
//
// Every topology change is a Raft proposal carrying the full serialized map
// (the map is small — a few hundred volumes); each manager applies committed
// maps to its local TopologyStateMachine. Only the Raft leader runs the
// failure detector and answers heartbeats with leases.
//
// Timing invariant (checked in Start): fail_timeout > lease_duration, so by
// the time the leader declares a server dead and activates a view without
// it, any lease that server held has already expired (§5.1's "a new topology
// map becomes effective with the next lease").
#ifndef SRC_CLUSTER_MANAGER_H_
#define SRC_CLUSTER_MANAGER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/messages.h"
#include "src/cluster/topology.h"
#include "src/raft/raft.h"
#include "src/rpc/node.h"

namespace cheetah::cluster {

struct ManagerConfig {
  ManagerConfig() = default;
  Nanos check_interval = Millis(100);  // failure-detector cadence
  Nanos fail_timeout = Millis(450);    // missed-heartbeat threshold
  Nanos lease_duration = Millis(300);
  Nanos rpc_timeout = Millis(100);
  // Phi-accrual suspicion (on top of the hard fail_timeout floor): a server
  // is only evicted once its silence is `phi_threshold` unlikely given its
  // observed heartbeat inter-arrival mean over the last `phi_window` samples.
  // A node whose heartbeats are merely slow (gray network) grows a large mean
  // and is judged against it instead of the wall-clock timeout alone.
  double phi_threshold = 1.9;
  uint32_t phi_window = 16;
  // Flap damping: each near-eviction (a heartbeat gap past fail_timeout/2
  // that then closed) stretches the node's effective timeout by one extra
  // fail_timeout, capped at `max_flap_penalty` extras; the count decays to
  // zero after `flap_decay` of clean heartbeats.
  uint32_t max_flap_penalty = 3;
  Nanos flap_decay = Seconds(10);
  // Live drain: per-pull command timeout (a catchup pull pages through a
  // whole PG) and the delay between drain retry rounds.
  Nanos migrate_rpc_timeout = Seconds(2);
  Nanos drain_retry_delay = Millis(200);
};

// Phi-accrual suspicion level for a heartbeat gap against the observed mean
// inter-arrival: phi = -log10(P(gap)) under an exponential arrival model,
// i.e. 0.4343 * gap / mean. Exposed as a free function for unit tests.
double PhiSuspicion(Nanos gap, Nanos mean_interarrival);

// Initial cluster layout for Bootstrap().
struct BootstrapSpec {
  BootstrapSpec() = default;
  uint32_t pg_count = 64;
  uint32_t replication = 3;
  std::vector<sim::NodeId> meta_servers;
  std::vector<sim::NodeId> data_servers;
  uint32_t disks_per_data_server = 1;
  uint32_t pvs_per_disk = 4;
  uint64_t pv_capacity_bytes = 0;  // derived from lv capacity below if 0
  uint64_t lv_capacity_bytes = GiB(1);
  uint32_t block_size = 4096;
  // EC tier geometry (src/tier): when ec_k > 0, Bootstrap also carves up to
  // pg_count stripe LVs of width ec_k + ec_m (assigned to ec_vgs round-robin)
  // before grouping the replica LVs.
  uint32_t ec_k = 0;
  uint32_t ec_m = 0;
};

class Manager {
 public:
  Manager(rpc::Node& rpc, sim::Storage& storage, raft::Config raft_config,
          ManagerConfig config, uint64_t seed);

  sim::Task<Status> Start();

  bool is_raft_leader() const { return raft_->is_leader(); }
  const TopologyMap& topology() const { return sm_.current; }
  uint64_t view() const { return sm_.current.view; }

  // Creates the initial topology (leader only).
  sim::Task<Status> Bootstrap(BootstrapSpec spec);

  // Expansion (leader only). AddMetaServer triggers CRUSH PG remapping (but
  // no data migration thanks to VGs); AddDataServer carves new PVs/LVs and
  // appends them to existing VGs round-robin.
  sim::Task<Status> AddMetaServer(sim::NodeId node);
  sim::Task<Status> AddDataServer(sim::NodeId node, uint32_t disks, uint32_t pvs_per_disk);

  // Planned decommission (leader only): live-migrates every PG the node
  // serves (Prepare -> DoubleWrite -> Catchup), then cuts the node out of the
  // CRUSH map in one atomic view bump and retires it. Returns once the drain
  // completes or aborts. One drain at a time. A leader elected mid-drain
  // resumes it from the replicated migration state.
  sim::Task<Status> DrainMetaServer(sim::NodeId node);

  // Test hook: force the failure check now.
  sim::Task<> CheckFailuresNow() { return CheckFailures(); }

  // Exposed for observability in benches/tests.
  uint64_t topology_changes() const { return topology_changes_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t flap_suppressions() const { return flap_suppressions_; }
  uint64_t drains_completed() const { return drains_completed_; }
  bool drain_running() const { return drain_running_; }

 private:
  struct TopologyStateMachine : raft::StateMachine {
    void Apply(uint64_t index, const std::string& command) override {
      auto map = TopologyMap::Deserialize(command);
      if (map.ok()) {
        current = std::move(*map);
      }
    }
    TopologyMap current;
  };

  // Serialized topology read-modify-write: runs `fn` on a copy of the current
  // map under an async lock, then commits it via Raft with view+1.
  sim::Task<Status> MutateTopology(std::function<Status(TopologyMap&)> fn);
  sim::Task<> LeaderLoop();
  sim::Task<> CheckFailures();
  sim::Task<> HandleMetaFailure(sim::NodeId node);
  sim::Task<> HandleDataFailure(sim::NodeId node);
  void PushTopologyToAll();

  // Drain state machine body (shared by DrainMetaServer and the mid-drain
  // leader-change resumption in LeaderLoop).
  sim::Task<Status> RunDrain(sim::NodeId node);
  // Effective eviction timeout for one server, flap damping applied.
  Nanos EffectiveFailTimeout(uint32_t flaps) const;

  sim::Task<Result<HeartbeatReply>> HandleHeartbeat(sim::NodeId src, HeartbeatRequest req);
  sim::Task<Result<GetTopologyReply>> HandleGetTopology(sim::NodeId src,
                                                        GetTopologyRequest req);
  sim::Task<Result<ReportFailureReply>> HandleReport(sim::NodeId src,
                                                     ReportFailureRequest req);
  sim::Task<Result<RecoveryDoneReply>> HandleRecoveryDone(sim::NodeId src,
                                                          RecoveryDoneRequest req);

  rpc::Node& rpc_;
  ManagerConfig config_;
  TopologyStateMachine sm_;
  std::unique_ptr<raft::RaftNode> raft_;

  struct Liveness {
    ServerKind kind = ServerKind::kMetaServer;
    Nanos last_seen = 0;
    // Phi-accrual inter-arrival window. `prev_arrival` is 0 until the first
    // heartbeat after creation (or a leader-change grace reset), so a stale
    // epoch never pollutes the sample stream.
    std::deque<Nanos> intervals;
    Nanos prev_arrival = 0;
    // Flap damping: near-evictions that healed, decayed after quiet time.
    uint32_t flaps = 0;
    Nanos last_flap = 0;
  };
  std::map<sim::NodeId, Liveness> liveness_;
  std::set<sim::NodeId> handling_failure_;  // avoid double-handling
  bool mutating_ = false;
  bool drain_running_ = false;
  PvId next_pv_id_ = 1;
  LvId next_lv_id_ = 1;
  uint64_t topology_changes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t flap_suppressions_ = 0;
  uint64_t drains_completed_ = 0;
};

}  // namespace cheetah::cluster

#endif  // SRC_CLUSTER_MANAGER_H_
