#include "src/raft/raft.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/sim/actor.h"
#include "src/sim/sync.h"

namespace cheetah::raft {

RaftNode::RaftNode(rpc::Node& rpc, sim::Storage& storage, Config config, StateMachine* sm,
                   uint64_t seed)
    : rpc_(rpc), storage_(storage), config_(std::move(config)), sm_(sm), rng_(seed) {}

sim::Task<Status> RaftNode::Start() {
  CO_RETURN_IF_ERROR(co_await LoadPersistent());
  rpc_.Serve<VoteRequest>([this](sim::NodeId src, VoteRequest req) {
    return HandleVote(src, std::move(req));
  });
  rpc_.Serve<AppendRequest>([this](sim::NodeId src, AppendRequest req) {
    return HandleAppend(src, std::move(req));
  });
  last_heartbeat_ = rpc_.machine().loop().Now();
  rpc_.machine().actor().Spawn(Ticker());
  co_return Status::Ok();
}

// ---- persistence ----

sim::Task<Status> RaftNode::PersistHardState() {
  std::string body;
  PutFixed64(&body, current_term_);
  PutFixed64(&body, voted_for_);
  std::string out;
  PutFixed32(&out, Crc32c(body));
  out += body;
  co_return co_await storage_.WriteFile(StateFile(), out, /*sync=*/true);
}

sim::Task<Status> RaftNode::PersistLog() {
  // The manager's log is small (topology updates); a whole-file rewrite keeps
  // truncation-on-conflict trivially correct.
  std::string body;
  PutVarint64(&body, log_.size());
  for (const auto& e : log_) {
    PutVarint64(&body, e.term);
    PutLengthPrefixed(&body, e.command);
  }
  std::string out;
  PutFixed32(&out, Crc32c(body));
  out += body;
  co_return co_await storage_.WriteFile(LogFile(), out, /*sync=*/true);
}

sim::Task<Status> RaftNode::LoadPersistent() {
  if (storage_.FileExists(StateFile())) {
    auto file = co_await storage_.ReadFile(StateFile());
    if (!file.ok()) {
      co_return file.status();
    }
    std::string_view data = *file;
    uint32_t crc = 0;
    if (!GetFixed32(&data, &crc) || Crc32c(data) != crc) {
      co_return Status::Corruption("raft hardstate");
    }
    uint64_t term = 0, vote = 0;
    if (!GetFixed64(&data, &term) || !GetFixed64(&data, &vote)) {
      co_return Status::Corruption("raft hardstate fields");
    }
    current_term_ = term;
    voted_for_ = static_cast<sim::NodeId>(vote);
  }
  if (storage_.FileExists(LogFile())) {
    auto file = co_await storage_.ReadFile(LogFile());
    if (!file.ok()) {
      co_return file.status();
    }
    std::string_view data = *file;
    uint32_t crc = 0;
    if (!GetFixed32(&data, &crc) || Crc32c(data) != crc) {
      co_return Status::Corruption("raft log");
    }
    uint64_t count = 0;
    if (!GetVarint64(&data, &count)) {
      co_return Status::Corruption("raft log count");
    }
    log_.clear();
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t term = 0;
      std::string_view cmd;
      if (!GetVarint64(&data, &term) || !GetLengthPrefixed(&data, &cmd)) {
        co_return Status::Corruption("raft log entry");
      }
      log_.emplace_back(term, std::string(cmd));
    }
  }
  co_return Status::Ok();
}

// ---- role transitions ----

void RaftNode::BecomeFollower(uint64_t term) {
  role_ = Role::kFollower;
  current_term_ = term;
  voted_for_ = kNoVote;
  ++election_nonce_;
}

sim::Task<> RaftNode::Ticker() {
  for (;;) {
    co_await sim::SleepFor(Millis(10));
    if (role_ == Role::kLeader) {
      continue;
    }
    const Nanos timeout =
        config_.election_timeout_min +
        rng_.Uniform(config_.election_timeout_max - config_.election_timeout_min);
    if (rpc_.machine().loop().Now() - last_heartbeat_ > timeout) {
      last_heartbeat_ = rpc_.machine().loop().Now();
      co_await RunElection();
    }
  }
}

sim::Task<> RaftNode::RunElection() {
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = rpc_.id();
  const uint64_t nonce = ++election_nonce_;
  const uint64_t term = current_term_;
  Status s = co_await PersistHardState();
  if (!s.ok()) {
    co_return;
  }

  struct Tally {
    int granted = 1;  // self-vote
    int responded = 1;
  };
  auto tally = std::make_shared<Tally>();
  auto done = std::make_shared<sim::Event>();
  const int majority = static_cast<int>(config_.members.size()) / 2 + 1;

  sim::Actor* actor = co_await sim::CurrentActor{};
  for (sim::NodeId peer : config_.members) {
    if (peer == rpc_.id()) {
      continue;
    }
    actor->Spawn([](RaftNode* self, sim::NodeId peer, uint64_t term, uint64_t nonce,
                    std::shared_ptr<Tally> tally, std::shared_ptr<sim::Event> done,
                    int majority) -> sim::Task<> {
      VoteRequest req;
      req.term = term;
      req.candidate = self->rpc_.id();
      req.last_log_index = self->last_log_index();
      req.last_log_term = self->LastLogTerm();
      auto reply = co_await self->rpc_.Call(peer, std::move(req), self->config_.rpc_timeout);
      if (self->election_nonce_ != nonce) {
        co_return;  // election superseded
      }
      ++tally->responded;
      if (reply.ok()) {
        if (reply->term > self->current_term_) {
          self->BecomeFollower(reply->term);
          co_await self->PersistHardState();
          done->Set();
          co_return;
        }
        if (reply->granted) {
          ++tally->granted;
        }
      }
      if (tally->granted >= majority ||
          tally->responded == static_cast<int>(self->config_.members.size())) {
        done->Set();
      }
    }(this, peer, term, nonce, tally, done, majority));
  }

  (void)co_await done->TimedWait(config_.election_timeout_min);
  if (election_nonce_ != nonce || role_ != Role::kCandidate || current_term_ != term) {
    co_return;
  }
  if (tally->granted >= majority) {
    role_ = Role::kLeader;
    leader_hint_ = rpc_.id();
    next_index_.clear();
    match_index_.clear();
    for (sim::NodeId peer : config_.members) {
      next_index_[peer] = last_log_index() + 1;
      match_index_[peer] = 0;
    }
    LOG_INFO << "raft: node " << rpc_.id() << " leader of term " << current_term_;
    actor->Spawn(LeaderLoop());
    // Commit a no-op in the new term so earlier-term entries become
    // committable and get re-applied after a full-cluster restart (§5.4.2 of
    // the Raft paper). State machines ignore empty commands.
    actor->Spawn([](RaftNode* self) -> sim::Task<> {
      (void)co_await self->Propose(std::string());
    }(this));
  } else {
    role_ = Role::kFollower;
  }
}

sim::Task<> RaftNode::LeaderLoop() {
  const uint64_t term = current_term_;
  sim::Actor* actor = co_await sim::CurrentActor{};
  while (role_ == Role::kLeader && current_term_ == term) {
    for (sim::NodeId peer : config_.members) {
      if (peer != rpc_.id()) {
        actor->Spawn(ReplicateTo(peer));
      }
    }
    co_await sim::SleepFor(config_.heartbeat_interval);
  }
}

sim::Task<> RaftNode::ReplicateTo(sim::NodeId peer) {
  if (role_ != Role::kLeader) {
    co_return;
  }
  const uint64_t term = current_term_;
  AppendRequest req;
  req.term = term;
  req.leader = rpc_.id();
  const uint64_t next = next_index_[peer];
  req.prev_log_index = next - 1;
  req.prev_log_term = req.prev_log_index == 0 ? 0 : log_[req.prev_log_index - 1].term;
  for (uint64_t i = next; i <= log_.size(); ++i) {
    req.entries.push_back(log_[i - 1]);
  }
  req.leader_commit = commit_index_;
  auto reply = co_await rpc_.Call(peer, std::move(req), config_.rpc_timeout);
  if (!reply.ok() || role_ != Role::kLeader || current_term_ != term) {
    co_return;
  }
  if (reply->term > current_term_) {
    BecomeFollower(reply->term);
    co_await PersistHardState();
    co_return;
  }
  if (reply->success) {
    match_index_[peer] = std::max(match_index_[peer], reply->match_index);
    next_index_[peer] = match_index_[peer] + 1;
    AdvanceCommit();
  } else {
    next_index_[peer] = std::max<uint64_t>(1, next_index_[peer] / 2);
  }
}

void RaftNode::AdvanceCommit() {
  // Largest index replicated on a majority whose entry is from this term.
  for (uint64_t idx = log_.size(); idx > commit_index_; --idx) {
    if (log_[idx - 1].term != current_term_) {
      break;
    }
    int count = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      if (peer != rpc_.id() && match >= idx) {
        ++count;
      }
    }
    if (count >= static_cast<int>(config_.members.size()) / 2 + 1) {
      commit_index_ = idx;
      ApplyCommitted();
      break;
    }
  }
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (sm_ != nullptr) {
      sm_->Apply(last_applied_, log_[last_applied_ - 1].command);
    }
  }
}

sim::Task<Result<uint64_t>> RaftNode::Propose(std::string command) {
  if (role_ != Role::kLeader) {
    co_return Status::Unavailable("not the raft leader");
  }
  const uint64_t term = current_term_;
  log_.emplace_back(term, std::move(command));
  const uint64_t index = log_.size();
  Status s = co_await PersistLog();
  if (!s.ok()) {
    co_return s;
  }
  // Push immediately rather than waiting for the next heartbeat.
  sim::Actor* actor = co_await sim::CurrentActor{};
  for (sim::NodeId peer : config_.members) {
    if (peer != rpc_.id()) {
      actor->Spawn(ReplicateTo(peer));
    }
  }
  const Nanos deadline = rpc_.machine().loop().Now() + Seconds(5);
  while (commit_index_ < index) {
    if (role_ != Role::kLeader || current_term_ != term) {
      co_return Status::Unavailable("lost leadership");
    }
    if (rpc_.machine().loop().Now() > deadline) {
      co_return Status::Timeout("commit timeout");
    }
    co_await sim::SleepFor(Millis(1));
  }
  co_return index;
}

sim::Task<Result<VoteReply>> RaftNode::HandleVote(sim::NodeId src, VoteRequest req) {
  VoteReply reply;
  if (req.term > current_term_) {
    BecomeFollower(req.term);
    co_await PersistHardState();
  }
  reply.term = current_term_;
  const bool log_ok = req.last_log_term > LastLogTerm() ||
                      (req.last_log_term == LastLogTerm() &&
                       req.last_log_index >= last_log_index());
  if (req.term == current_term_ && log_ok &&
      (voted_for_ == kNoVote || voted_for_ == req.candidate)) {
    voted_for_ = req.candidate;
    co_await PersistHardState();  // persist the vote before granting it
    reply.granted = true;
    last_heartbeat_ = rpc_.machine().loop().Now();
  }
  co_return reply;
}

sim::Task<Result<AppendReply>> RaftNode::HandleAppend(sim::NodeId src, AppendRequest req) {
  AppendReply reply;
  if (req.term > current_term_) {
    BecomeFollower(req.term);
    co_await PersistHardState();
  }
  reply.term = current_term_;
  if (req.term < current_term_) {
    co_return reply;  // stale leader
  }
  // Valid leader for this term.
  role_ = Role::kFollower;
  leader_hint_ = req.leader;
  last_heartbeat_ = rpc_.machine().loop().Now();

  // Log-matching check.
  if (req.prev_log_index > log_.size() ||
      (req.prev_log_index > 0 && log_[req.prev_log_index - 1].term != req.prev_log_term)) {
    co_return reply;  // success = false; leader will back off
  }
  // Append / overwrite conflicting suffix.
  bool mutated = false;
  for (size_t i = 0; i < req.entries.size(); ++i) {
    const uint64_t idx = req.prev_log_index + 1 + i;
    if (idx <= log_.size()) {
      if (log_[idx - 1].term != req.entries[i].term) {
        log_.resize(idx - 1);
        log_.push_back(req.entries[i]);
        mutated = true;
      }
    } else {
      log_.push_back(req.entries[i]);
      mutated = true;
    }
  }
  if (mutated) {
    Status s = co_await PersistLog();
    if (!s.ok()) {
      co_return s;
    }
  }
  const uint64_t last_new = req.prev_log_index + req.entries.size();
  if (req.leader_commit > commit_index_) {
    commit_index_ = std::min<uint64_t>(req.leader_commit, log_.size());
    ApplyCommitted();
  }
  reply.success = true;
  reply.match_index = last_new;
  co_return reply;
}

}  // namespace cheetah::raft
