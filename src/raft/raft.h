// Raft consensus (Ongaro & Ousterhout, ATC'14) for the manager cluster.
//
// The paper's system manager is "an odd number of manager server processes
// jointly running Raft as one reliable central system manager" (§4.1). This
// is a faithful single-decree-log Raft with static membership: randomized
// election timeouts, vote/term persistence before granting, log-matching
// checks on AppendEntries, and commit only for current-term entries.
// Snapshots and membership change are out of scope (the manager's state is
// tiny and membership is fixed for an experiment).
#ifndef SRC_RAFT_RAFT_H_
#define SRC_RAFT_RAFT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/rpc/node.h"
#include "src/sim/storage.h"
#include "src/sim/task.h"

namespace cheetah::raft {

struct LogEntry {
  LogEntry() = default;
  LogEntry(uint64_t term, std::string command)
      : term(term), command(std::move(command)) {}
  uint64_t term = 0;
  std::string command;
};

// Applied-command consumer. Apply is invoked exactly once per index, in
// order, on every node that commits the entry.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual void Apply(uint64_t index, const std::string& command) = 0;
};

struct Config {
  Config() = default;
  std::vector<sim::NodeId> members;
  Nanos election_timeout_min = Millis(150);
  Nanos election_timeout_max = Millis(300);
  Nanos heartbeat_interval = Millis(40);
  Nanos rpc_timeout = Millis(60);
};

// ---- wire messages ----

struct VoteReply {
  VoteReply() = default;
  uint64_t term = 0;
  bool granted = false;
  size_t wire_size() const { return 24; }
};
struct VoteRequest {
  using Response = VoteReply;
  VoteRequest() = default;
  uint64_t term = 0;
  sim::NodeId candidate = 0;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  size_t wire_size() const { return 40; }
};

struct AppendReply {
  AppendReply() = default;
  uint64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;
  size_t wire_size() const { return 32; }
};
struct AppendRequest {
  using Response = AppendReply;
  AppendRequest() = default;
  uint64_t term = 0;
  sim::NodeId leader = 0;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  uint64_t leader_commit = 0;
  size_t wire_size() const {
    size_t n = 56;
    for (const auto& e : entries) {
      n += e.command.size() + 16;
    }
    return n;
  }
};

enum class Role { kFollower, kCandidate, kLeader };

class RaftNode {
 public:
  RaftNode(rpc::Node& rpc, sim::Storage& storage, Config config, StateMachine* sm,
           uint64_t seed);

  // Loads persistent state, registers RPC handlers, and starts the ticker.
  sim::Task<Status> Start();

  Role role() const { return role_; }
  bool is_leader() const { return role_ == Role::kLeader; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_log_index() const { return log_.size(); }
  sim::NodeId leader_hint() const { return leader_hint_; }

  // Replicates `command`; resolves once the entry is committed and applied
  // locally. Fails with kUnavailable if this node is not (or stops being)
  // the leader.
  sim::Task<Result<uint64_t>> Propose(std::string command);

 private:
  static constexpr uint64_t kNoVote = sim::kInvalidNode;

  // Persistent state helpers. Log index is 1-based; log_[i-1] = entry i.
  sim::Task<Status> PersistHardState();
  sim::Task<Status> PersistLog();
  sim::Task<Status> LoadPersistent();
  std::string StateFile() const { return "raft.hardstate"; }
  std::string LogFile() const { return "raft.log"; }

  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }

  void BecomeFollower(uint64_t term);
  sim::Task<> Ticker();
  sim::Task<> RunElection();
  sim::Task<> LeaderLoop();
  sim::Task<> ReplicateTo(sim::NodeId peer);
  void AdvanceCommit();
  void ApplyCommitted();

  sim::Task<Result<VoteReply>> HandleVote(sim::NodeId src, VoteRequest req);
  sim::Task<Result<AppendReply>> HandleAppend(sim::NodeId src, AppendRequest req);

  rpc::Node& rpc_;
  sim::Storage& storage_;
  Config config_;
  StateMachine* sm_;
  Rng rng_;

  // Persistent (rewritten on change, synced).
  uint64_t current_term_ = 0;
  sim::NodeId voted_for_ = kNoVote;
  std::vector<LogEntry> log_;

  // Volatile.
  Role role_ = Role::kFollower;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  Nanos last_heartbeat_ = 0;
  uint64_t election_nonce_ = 0;  // invalidates stale election coroutines

  // Leader state.
  std::map<sim::NodeId, uint64_t> next_index_;
  std::map<sim::NodeId, uint64_t> match_index_;
};

}  // namespace cheetah::raft

#endif  // SRC_RAFT_RAFT_H_
