// Quickstart: boot a small simulated Cheetah cluster, store a few objects,
// read them back, delete one, and print what happened.
//
//   $ ./build/examples/quickstart
//
// Everything (managers running Raft, meta servers with MetaX, raw-block data
// servers, client proxies) runs inside one deterministic simulator process.
#include <cstdio>

#include "src/core/testbed.h"

using namespace cheetah;

int main() {
  // A small paper-shaped cluster: 3 meta machines, 4 data machines with two
  // disks each, 3-way replication for both metadata and data.
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(256);

  core::Testbed bed(std::move(config));
  Status boot = bed.Boot();
  if (!boot.ok()) {
    std::printf("boot failed: %s\n", boot.ToString().c_str());
    return 1;
  }
  std::printf("cluster up: view=%llu, manager leader=%d\n",
              static_cast<unsigned long long>(bed.proxy(0).view()), bed.LeaderManager());

  // put: the proxy gets an allocation from the PG's primary meta server and
  // streams data to the three data replicas while MetaX persists in parallel.
  Status put = bed.PutObject(0, "hello.txt", "Hello, Cheetah!");
  std::printf("put hello.txt: %s\n", put.ToString().c_str());

  // Objects are immutable: a second put of a live name is rejected.
  Status dup = bed.PutObject(0, "hello.txt", "overwrite?");
  std::printf("put hello.txt again: %s (immutability)\n", dup.ToString().c_str());

  // get: one metadata lookup, then a read from any one data replica.
  auto got = bed.GetObject(0, "hello.txt");
  std::printf("get hello.txt: \"%s\"\n", got.ok() ? got->c_str() : got.status().ToString().c_str());

  // delete: a single metadata round trip — no data-server I/O, and the
  // object's blocks are immediately reusable (no compaction).
  Status del = bed.DeleteObject(0, "hello.txt");
  std::printf("delete hello.txt: %s\n", del.ToString().c_str());
  auto gone = bed.GetObject(0, "hello.txt");
  std::printf("get after delete: %s\n", gone.status().ToString().c_str());

  // ...and the name can be reused (the update idiom, §4.3.1).
  Status re = bed.PutObject(0, "hello.txt", "Hello again!");
  auto again = bed.GetObject(0, "hello.txt");
  std::printf("re-put + get: %s / \"%s\"\n", re.ToString().c_str(),
              again.ok() ? again->c_str() : "?");

  const auto& stats = bed.proxy(0).stats();
  std::printf("\nproxy stats: %llu puts, %llu gets, %llu deletes, %llu retries\n",
              static_cast<unsigned long long>(stats.puts),
              static_cast<unsigned long long>(stats.gets),
              static_cast<unsigned long long>(stats.deletes),
              static_cast<unsigned long long>(stats.retries));
  return 0;
}
