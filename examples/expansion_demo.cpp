// Expansion demo: the §4.2 hybrid-mapping story, live. Grow the data
// cluster (new volumes join existing VGs; zero migration), then grow the
// meta cluster (CRUSH remaps PGs; metadata moves, object data does not) —
// and contrast with what Cheetah-NoVG would have done.
//
//   $ ./build/examples/expansion_demo
#include <cstdio>

#include "src/core/testbed.h"

using namespace cheetah;

namespace {

uint64_t TotalDataWrites(core::Testbed& bed) {
  uint64_t writes = 0;
  for (int i = 0; i < bed.num_data(); ++i) {
    writes += bed.data(i).stats().writes;
  }
  return writes;
}

}  // namespace

int main() {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(256);
  config.store_volume_content = false;

  core::Testbed bed(std::move(config));
  if (Status s = bed.Boot(); !s.ok()) {
    std::printf("boot failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("loading 300 objects (64KB each)...\n");
  for (int i = 0; i < 300; ++i) {
    if (!bed.PutObject(0, "obj-" + std::to_string(i), std::string(65536, 'o')).ok()) {
      std::printf("load failed at %d\n", i);
      return 1;
    }
  }
  bed.RunFor(Seconds(2));
  const uint64_t writes_loaded = TotalDataWrites(bed);
  std::printf("cluster: view=%llu, data writes so far=%llu\n\n",
              static_cast<unsigned long long>(bed.proxy(0).view()),
              static_cast<unsigned long long>(writes_loaded));

  // --- data expansion: new volumes join the existing VGs ---
  std::printf("[1] adding a data machine (2 disks x 3 PVs)...\n");
  auto d = bed.AddDataMachine(2, 3);
  if (!d.ok()) {
    std::printf("  failed: %s\n", d.status().ToString().c_str());
    return 1;
  }
  bed.RunFor(Seconds(1));
  std::printf("  view=%llu; extra data writes since load: %llu (0 = migration-free)\n",
              static_cast<unsigned long long>(bed.proxy(0).view()),
              static_cast<unsigned long long>(TotalDataWrites(bed) - writes_loaded));

  // --- meta expansion: PGs re-CRUSH, metadata moves, data stays ---
  std::printf("\n[2] adding a meta machine (CRUSH remaps ~1/4 of the PGs)...\n");
  auto m = bed.AddMetaMachine();
  if (!m.ok()) {
    std::printf("  failed: %s\n", m.status().ToString().c_str());
    return 1;
  }
  bed.RunFor(Seconds(2));
  std::printf("  view=%llu; MetaX KVs pulled by the new server: %llu\n",
              static_cast<unsigned long long>(bed.proxy(0).view()),
              static_cast<unsigned long long>(bed.meta(*m).stats().recovered_kvs));
  uint64_t migrated = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    migrated += bed.meta(i).stats().migrated_objects;
  }
  std::printf("  object data migrated: %llu (VGs pin data to volumes)\n",
              static_cast<unsigned long long>(migrated));
  std::printf("  extra data writes since load: %llu\n",
              static_cast<unsigned long long>(TotalDataWrites(bed) - writes_loaded));

  // Everything still reads.
  int readable = 0;
  for (int i = 0; i < 300; i += 7) {
    readable += bed.GetObject(0, "obj-" + std::to_string(i)).ok();
  }
  std::printf("\nspot check after both expansions: %d/43 sampled objects readable\n",
              readable);
  std::printf(
      "\n(For the contrast, run bench/fig14_expansion: Cheetah-NoVG migrates\n"
      "object data after the same meta expansion and its in-migration GET\n"
      "throughput collapses by >20x.)\n");
  return 0;
}
