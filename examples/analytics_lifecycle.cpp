// Analytics lifecycle store: the write-dominant workload from §6.4 — data
// collection/analysis applications that put objects constantly and delete
// them when their lifecycle ends (hours to months). This is the workload
// class Cheetah broadens directory-based object storage to: frequent
// unpredictable put/delete with no idle window for compaction.
//
//   $ ./build/examples/analytics_lifecycle
#include <cstdio>
#include <deque>

#include "src/core/testbed.h"
#include "src/workload/adapters.h"
#include "src/workload/runner.h"

using namespace cheetah;

int main() {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 6;
  config.proxies = 2;
  config.pg_count = 16;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 4;
  config.lv_capacity_bytes = MiB(512);
  config.store_volume_content = false;

  core::Testbed bed(std::move(config));
  if (Status s = bed.Boot(); !s.ok()) {
    std::printf("boot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::unique_ptr<workload::CheetahStore>> stores;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;
  for (int i = 0; i < bed.num_proxies(); ++i) {
    stores.push_back(std::make_unique<workload::CheetahStore>(&bed.proxy(i)));
    clients.emplace_back(&bed.proxy_machine(i).actor(), stores.back().get());
  }

  // Simulate 5 "days": each day ingests a batch of measurement objects and
  // expires the oldest generation — a rolling window, so total live data is
  // bounded while the cumulative write volume keeps growing.
  std::deque<std::vector<std::string>> generations;
  const uint64_t per_day = 800;
  for (int day = 1; day <= 5; ++day) {
    auto batch = workload::Preload(bed.loop(), clients,
                                   "day" + std::to_string(day) + "/rec-", per_day,
                                   KiB(256));
    std::printf("day %d: ingested %zu objects (256KB each)\n", day, batch.size());
    generations.push_back(std::move(batch));
    if (generations.size() > 2) {
      // Lifecycle expiry: delete the oldest generation. The blocks are
      // immediately reusable — tomorrow's ingest lands in today's holes.
      auto victims = std::move(generations.front());
      generations.pop_front();
      workload::RunnerConfig rc;
      rc.concurrency = 50;
      rc.total_ops = victims.size();
      workload::Runner runner(bed.loop(), clients, rc);
      auto cursor = std::make_shared<size_t>(0);
      auto list = std::make_shared<std::vector<std::string>>(std::move(victims));
      auto results = runner.Run([cursor, list](Rng&) {
        workload::Op op;
        op.type = workload::OpType::kDelete;
        op.name = (*list)[(*cursor)++ % list->size()];
        return op;
      });
      std::printf("  expired %llu objects, mean delete %.3f ms (metadata-only)\n",
                  static_cast<unsigned long long>(results.del.count()),
                  results.del.MeanMillis());
    }
    bed.RunFor(Seconds(1));  // log cleaning + bitmap sync between days
  }

  // Show that the cluster never needed compaction: cumulative ingest exceeds
  // live data, yet every live object reads back.
  uint64_t checked = 0, ok = 0;
  for (const auto& gen : generations) {
    for (size_t i = 0; i < gen.size(); i += 97) {
      ++checked;
      ok += bed.GetObject(0, gen[i]).ok();
    }
  }
  std::printf("\nspot check: %llu/%llu live objects readable\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(checked));
  uint64_t revoked = 0, cleaned = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    revoked += bed.meta(i).stats().revoked_puts;
    cleaned += bed.meta(i).stats().logs_cleaned;
  }
  std::printf("meta servers: %llu meta-logs cleaned, %llu puts revoked, 0 compactions ever\n",
              static_cast<unsigned long long>(cleaned),
              static_cast<unsigned long long>(revoked));
  return 0;
}
