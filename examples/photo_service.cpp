// Photo service: the read-dominant scenario that motivated Haystack — a
// photo-sharing backend uploading albums once and serving many reads. Shows
// the §7 read optimization (the proxy overlaps the authoritative metadata
// lookup with the data read on cache hits) and per-op latency statistics.
//
//   $ ./build/examples/photo_service
#include <cstdio>

#include "src/core/testbed.h"
#include "src/workload/adapters.h"
#include "src/workload/runner.h"

using namespace cheetah;

int main() {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 6;
  config.proxies = 2;
  config.pg_count = 16;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 4;
  config.lv_capacity_bytes = GiB(1);
  config.store_volume_content = false;  // photos are simulated payloads

  core::Testbed bed(std::move(config));
  if (Status s = bed.Boot(); !s.ok()) {
    std::printf("boot failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<std::unique_ptr<workload::CheetahStore>> stores;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;
  for (int i = 0; i < bed.num_proxies(); ++i) {
    stores.push_back(std::make_unique<workload::CheetahStore>(&bed.proxy(i)));
    clients.emplace_back(&bed.proxy_machine(i).actor(), stores.back().get());
  }

  // Upload 40 albums x 25 photos of ~200KB.
  std::printf("uploading 1000 photos...\n");
  auto names = workload::Preload(bed.loop(), clients, "album/photo-", 1000, KiB(200));
  std::printf("uploaded %zu photos\n", names.size());

  // Serve a read-dominant day: 95%% gets, 5%% uploads.
  workload::NamePool pool("album/new-");
  for (auto& n : names) {
    pool.Add(std::move(n));
  }
  workload::MixedWorkload mix(0.05, 0.0, workload::FixedSize(KiB(200)), &pool);
  workload::RunnerConfig rc;
  rc.concurrency = 50;
  rc.total_ops = 5000;
  workload::Runner runner(bed.loop(), clients, rc);
  auto results = runner.Run(
      [&mix](Rng& rng) { return mix.Next(rng); },
      [&pool](const std::string& name) { pool.Add(name); });

  std::printf("\nread-dominant day (95%% get / 5%% put):\n");
  std::printf("  gets: %llu, mean %.3f ms, p99 %.3f ms\n",
              static_cast<unsigned long long>(results.get.count()),
              results.get.MeanMillis(), results.get.PercentileMillis(0.99));
  std::printf("  puts: %llu, mean %.3f ms\n",
              static_cast<unsigned long long>(results.put.count()),
              results.put.MeanMillis());
  std::printf("  throughput: %.0f req/sec\n", results.throughput.OpsPerSec());
  uint64_t cache_hits = 0;
  for (int i = 0; i < bed.num_proxies(); ++i) {
    cache_hits += bed.proxy(i).stats().cache_hits;
  }
  std::printf("  proxy metadata-cache hits: %llu (the §7 read optimization)\n",
              static_cast<unsigned long long>(cache_hits));
  return 0;
}
