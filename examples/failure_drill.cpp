// Failure drill: exercises §5's recovery machinery end to end — crash a
// meta server mid-traffic, crash a data machine, then cut power to the
// whole cluster — verifying after each drill that every committed object is
// still readable and consistent.
//
//   $ ./build/examples/failure_drill
#include <cstdio>
#include <vector>

#include "src/core/testbed.h"

using namespace cheetah;

namespace {

int CheckAll(core::Testbed& bed, const std::vector<std::string>& names) {
  int readable = 0;
  for (const auto& name : names) {
    readable += bed.GetObject(0, name).ok();
  }
  return readable;
}

}  // namespace

int main() {
  core::TestbedConfig config;
  config.meta_machines = 4;  // PGs live on 3 of 4: crashes force real pulls
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(256);

  core::Testbed bed(std::move(config));
  if (Status s = bed.Boot(); !s.ok()) {
    std::printf("boot failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    std::string name = "drill-" + std::to_string(i);
    if (bed.PutObject(i % 2, name, std::string(8192, 'd')).ok()) {
      names.push_back(std::move(name));
    }
  }
  std::printf("loaded %zu objects; view=%llu\n", names.size(),
              static_cast<unsigned long long>(bed.proxy(0).view()));

  // Drill 1: meta server crash. The manager detects the missed heartbeats,
  // publishes a new view, and the surviving/new primaries pull the PGs.
  std::printf("\n[drill 1] crashing meta machine 0...\n");
  bed.CrashMetaMachine(0, /*power_loss=*/false);
  bed.RunFor(Seconds(3));
  std::printf("  new view=%llu; readable: %d/%zu\n",
              static_cast<unsigned long long>(bed.proxy(0).view()), CheckAll(bed, names),
              names.size());
  uint64_t recovered = 0;
  for (int i = 1; i < bed.num_meta(); ++i) {
    recovered += bed.meta(i).stats().recovered_kvs;
  }
  std::printf("  MetaX KVs pulled by surviving servers: %llu\n",
              static_cast<unsigned long long>(recovered));

  // Drill 2: data machine crash. Affected volumes go readonly, replacements
  // are re-replicated in parallel, then writes resume on them.
  std::printf("\n[drill 2] crashing data machine 0...\n");
  bed.CrashDataMachine(0, /*power_loss=*/false);
  bed.RunFor(Seconds(4));
  uint64_t volumes = 0, bytes = 0;
  for (int i = 1; i < bed.num_data(); ++i) {
    volumes += bed.data(i).stats().volumes_recovered;
    bytes += bed.data(i).stats().recovery_bytes;
  }
  std::printf("  volumes re-replicated: %llu (%llu bytes); readable: %d/%zu\n",
              static_cast<unsigned long long>(volumes),
              static_cast<unsigned long long>(bytes), CheckAll(bed, names), names.size());
  Status put = bed.PutObject(0, "post-data-crash", std::string(8192, 'p'));
  std::printf("  put after recovery: %s\n", put.ToString().c_str());
  if (put.ok()) {
    names.push_back("post-data-crash");
  }

  // Drill 3: full power loss. MetaX was fsynced before every ack, so after
  // reboot + Raft re-election + PG log negotiation everything is back.
  std::printf("\n[drill 3] power failure on every machine...\n");
  for (int i = 0; i < 3; ++i) {
    bed.CrashManager(i, /*power_loss=*/true);
  }
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.CrashMetaMachine(i, /*power_loss=*/true);
  }
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.CrashDataMachine(i, /*power_loss=*/true);
  }
  bed.RunFor(Millis(100));
  for (int i = 0; i < 3; ++i) {
    bed.RestartManager(i);
  }
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.RestartMetaMachine(i);
  }
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.RestartDataMachine(i);
  }
  bed.RunFor(Seconds(5));
  std::printf("  after reboot: view=%llu, readable: %d/%zu\n",
              static_cast<unsigned long long>(bed.proxy(0).view()), CheckAll(bed, names),
              names.size());
  std::printf("\nall drills complete.\n");
  return 0;
}
