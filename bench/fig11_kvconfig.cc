// Fig. 11: sensitivity of the MetaX KV store to flush/merge aggressiveness.
// Default: 64MB memtable, L0 trigger 4. Flush+: 1MB memtable. Merge+: 1MB
// memtable + trigger 1. Values are padded to 1KB as in the paper. The paper
// finds the impact small — the LSM write path absorbs aggressive flushing.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

double MeasureConfig(uint64_t memtable_bytes, int trigger) {
  core::CheetahOptions options;
  options.metax_kv.memtable_bytes = memtable_bytes;
  options.metax_kv.l0_compaction_trigger = trigger;
  auto bench = MakeCheetah(PaperCheetahConfig(options));
  // Pad the value of each KV to ~1KB: long object names bloat every MetaX
  // record the same way the paper's padding does.
  const std::string pad(1024, 'n');
  workload::RunnerConfig config;
  config.concurrency = 100;
  config.total_ops = ScaledOps(6000);
  workload::Runner runner(bench.loop(), bench.clients, config);
  auto counter = std::make_shared<uint64_t>(0);
  auto results = runner.Run([counter, &pad](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kPut;
    op.name = "kvcfg-" + std::to_string((*counter)++) + "-" + pad;
    op.size = KiB(8);
    return op;
  });
  return results.throughput.OpsPerSec();
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 11: MetaX KV-store configurations (8KB puts, padded values)");
  PrintTableHeader({"config", "buffer", "trigger", "req/sec", "normalized"});
  const double base = MeasureConfig(MiB(64), 4);
  struct Row {
    const char* name;
    uint64_t buffer;
    int trigger;
  };
  for (const Row& row : {Row{"Default", MiB(64), 4}, Row{"Flush+", MiB(1), 4},
                         Row{"Merge+", MiB(1), 1}}) {
    const double tput =
        (row.buffer == MiB(64) && row.trigger == 4) ? base
                                                    : MeasureConfig(row.buffer, row.trigger);
    std::printf("%-18s%-18s%-18d%-18.0f%-18.2f\n", row.name,
                row.buffer >= MiB(64) ? "64MB" : "1MB", row.trigger, tput,
                base > 0 ? tput / base : 0.0);
    std::fflush(stdout);
  }
  DumpObsJson("fig11_kvconfig");
  return 0;
}
