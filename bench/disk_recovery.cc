// §6.3 disk-failure recovery: preload 512KB objects, fail one data machine,
// and measure how long the parallel re-replication takes and its aggregate
// bandwidth, for Cheetah and the Ceph-like baseline. The paper reports both
// recover a failed disk's ~400GB in ~16s (Ceph slightly faster thanks to
// CRUSH data placement); at our scaled-down load the shape to check is that
// both finish in the same ballpark with Ceph marginally ahead or equal.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const uint64_t preload = ScaledOps(3000);

  PrintTitle("§6.3 disk-failure recovery (512KB objects)");
  PrintTableHeader({"system", "bytes recovered", "recovery time (s)", "GB/sec"});

  {
    auto bench = MakeCheetah();
    (void)workload::Preload(bench.loop(), bench.clients, "dr-", preload, KiB(512));
    auto bytes_recovered = [&bench] {
      uint64_t total = 0;
      for (int i = 0; i < bench.bed->num_data(); ++i) {
        if (bench.bed->data_machine(i).alive()) {
          total += bench.bed->data(i).stats().recovery_bytes;
        }
      }
      return total;
    };
    bench.bed->CrashDataMachine(0, /*power_loss=*/false);
    uint64_t last = 0;
    Nanos first_change = 0;
    Nanos last_change = 0;
    for (int tick = 0; tick < 600; ++tick) {
      bench.bed->RunFor(Millis(100));
      const uint64_t now_bytes = bytes_recovered();
      if (now_bytes != last) {
        if (first_change == 0) {
          first_change = bench.loop().Now() - Millis(100);
        }
        last = now_bytes;
        last_change = bench.loop().Now();
      } else if (last > 0 && bench.loop().Now() - last_change > Seconds(2)) {
        break;  // recovery has plateaued
      }
    }
    const double secs =
        std::max(0.05, static_cast<double>(last_change - first_change) / 1e9);
    std::printf("%-18s%-18llu%-18.2f%-18.2f\n", "Cheetah",
                static_cast<unsigned long long>(last), secs,
                secs > 0 ? static_cast<double>(last) / 1e9 / secs : 0.0);
  }

  {
    auto bench = MakeCeph();
    (void)workload::Preload(bench.loop(), bench.clients, "dr-", preload, KiB(512));
    auto bytes_recovered = [&bench] {
      uint64_t total = 0;
      for (int i = 1; i < bench.cluster->num_osds(); ++i) {
        total += bench.cluster->osd(i).stats().backfill_bytes;
      }
      return total;
    };
    bench.cluster->FailOsd(0);
    uint64_t last = 0;
    Nanos first_change = 0;
    Nanos last_change = 0;
    for (int tick = 0; tick < 600; ++tick) {
      bench.loop().RunFor(Millis(100));
      const uint64_t now_bytes = bytes_recovered();
      if (now_bytes != last) {
        if (first_change == 0) {
          first_change = bench.loop().Now() - Millis(100);
        }
        last = now_bytes;
        last_change = bench.loop().Now();
      } else if (last > 0 && bench.loop().Now() - last_change > Seconds(2)) {
        break;
      }
    }
    const double secs =
        std::max(0.05, static_cast<double>(last_change - first_change) / 1e9);
    std::printf("%-18s%-18llu%-18.2f%-18.2f\n", "Ceph",
                static_cast<unsigned long long>(last), secs,
                secs > 0 ? static_cast<double>(last) / 1e9 / secs : 0.0);
  }
  DumpObsJson("disk_recovery");
  return 0;
}
