// Fig. 19: in-compaction performance. Fill both systems, randomly delete a
// large fraction, then trigger Haystack's volume compaction (unthrottled, as
// in the paper) and measure put throughput while it runs. Cheetah reclaims
// space in place and never compacts, so its throughput is unaffected — the
// gap widens sharply during the compaction window.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const uint64_t preload = ScaledOps(4000);   // 512KB objects: lots to rewrite
  const uint64_t measure_ops = ScaledOps(6000);
  const int concurrency = 400;

  PrintTitle("Fig. 19: PUT throughput with deletions pending reclamation (req/sec)");
  PrintTableHeader({"system", "req/sec", "note"});

  double cheetah_tput = 0;
  {
    auto bench = MakeCheetah();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "fill-", preload, KiB(512));
    (void)RunDeletes(bench.loop(), bench.clients, names, names.size() / 2, concurrency);
    auto r = RunPuts(bench.loop(), bench.clients, "during-", measure_ops, KiB(8),
                     concurrency);
    cheetah_tput = r.throughput.OpsPerSec();
    std::printf("%-18s%-18.0f%s\n", "Cheetah", cheetah_tput,
                "space reclaimed in place; no compaction");
  }

  double haystack_idle = 0, haystack_compact = 0;
  {
    auto bench = MakeHaystack();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "fill-", preload, KiB(512));
    (void)RunDeletes(bench.loop(), bench.clients, names, names.size() / 2, concurrency);
    auto idle = RunPuts(bench.loop(), bench.clients, "idle-", measure_ops / 2, KiB(8),
                        concurrency);
    haystack_idle = idle.throughput.OpsPerSec();
    bench.cluster->TriggerCompactionAll();  // unthrottled, as in the paper
    auto during = RunPuts(bench.loop(), bench.clients, "during-", measure_ops, KiB(8),
                          concurrency);
    haystack_compact = during.throughput.OpsPerSec();
    uint64_t compactions = 0, rewritten = 0;
    for (int s = 0; s < bench.cluster->num_stores(); ++s) {
      compactions += bench.cluster->store(s).stats().compactions;
      rewritten += bench.cluster->store(s).stats().compacted_bytes;
    }
    std::fprintf(stderr, "  compactions=%llu rewritten=%llu bytes\n",
                 static_cast<unsigned long long>(compactions),
                 static_cast<unsigned long long>(rewritten));
    std::printf("%-18s%-18.0f%s\n", "Haystack", haystack_idle,
                "before compaction (dead needles accumulate)");
    std::printf("%-18s%-18.0f%s\n", "Haystack-compact", haystack_compact,
                "during compaction (unthrottled)");
  }
  std::printf("\nCheetah / Haystack-in-compaction = %.2fx\n",
              haystack_compact > 0 ? cheetah_tput / haystack_compact : 0.0);
  DumpObsJson("fig19_compaction");
  return 0;
}
