// Engine microbenchmark: events/sec through the simulator core, before vs
// after.
//
//   legacy — the pre-wheel event loop, reproduced verbatim: one global
//            std::priority_queue ordered by (time, seq) holding std::function
//            callbacks (every capture > 16 bytes heap-allocates), popped via
//            the const_cast-move workaround.
//   heap   — EventLoop's reference engine: same global-heap algorithm, but
//            InlineFn callbacks and a movable top slot.
//   wheel  — EventLoop's default hierarchical timer wheel.
//
// All three drive the identical self-rescheduling timer workload (a seeded
// Rng; mixed near/far delays shaped like RPC + timeout traffic) and must
// produce bit-identical firing-order fingerprints — the wheel is only allowed
// to be faster, never different. The binary asserts the fingerprints and a
// conservative speedup floor, so it doubles as a regression test; the `perf`
// tier of scripts/check.sh runs it with CHEETAH_SIM_ENGINE_SMOKE=1 for a
// reduced event count.
//
// Emits BENCH_sim_engine.json with the measured rates.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <fstream>
#include <queue>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/sim/event_loop.h"

namespace {

using cheetah::Mix64;
using cheetah::Nanos;
using cheetah::Rng;
using cheetah::sim::EventLoop;

struct Params {
  uint64_t total_events = 4'000'000;
  int actors = 8192;
  uint64_t seed = 0x5eedc4a7;
};

// Delay distribution shaped like simulator traffic: mostly sub-horizon gaps
// (network/disk completions), a slice of multi-horizon gaps, and a tail of
// far-future timeouts that exercises the overflow path.
Nanos NextDelay(Rng& rng) {
  const uint64_t pick = rng.Uniform(100);
  if (pick < 80) {
    return rng.UniformRange(100, 30'000);  // within one wheel horizon
  }
  if (pick < 95) {
    return rng.UniformRange(30'000, 3'000'000);  // a few rotations out
  }
  return rng.UniformRange(3'000'000, 400'000'000);  // timeout-scale
}

struct RunResult {
  uint64_t fingerprint = 0;
  double events_per_sec = 0;
};

// ---- legacy engine: the event loop as it was before this change ----------

class LegacyLoop {
 public:
  Nanos Now() const { return now_; }

  void ScheduleAt(Nanos time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(Nanos delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  bool RunOne() {
    if (queue_.empty()) {
      return false;
    }
    // The historical workaround: priority_queue::top() is const, so the event
    // was moved out through a const_cast before pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  void Run() {
    while (RunOne()) {
    }
  }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// The workload: `actors` self-rescheduling timers, every firing drawing its
// next delay from the shared seeded Rng, until `total_events` have fired. The
// fingerprint chains (virtual time, actor id) in firing order, so any
// deviation in schedule order changes it.
template <typename Loop>
RunResult Drive(Loop& loop, const Params& p) {
  struct State {
    Loop* loop;
    Rng rng;
    uint64_t fired = 0;
    uint64_t fingerprint = 0;
    uint64_t total;
    explicit State(Loop* l, uint64_t seed, uint64_t total)
        : loop(l), rng(seed), total(total) {}
  };
  State st(&loop, p.seed, p.total_events);

  // Fixed-size capture [State*, id] stays inside InlineFn's inline buffer and
  // inside libstdc++'s std::function SBO alike, so the comparison measures
  // queue mechanics, not capture allocation differences.
  struct Tick {
    State* st;
    uint32_t id;
    void operator()() const {
      State& s = *st;
      s.fingerprint = Mix64(s.fingerprint ^ (static_cast<uint64_t>(s.loop->Now()) + id));
      if (++s.fired < s.total) {
        s.loop->ScheduleAfter(NextDelay(s.rng), Tick{st, id});
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < p.actors; ++i) {
    loop.ScheduleAfter(NextDelay(st.rng), Tick{&st, static_cast<uint32_t>(i)});
  }
  loop.Run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return RunResult{st.fingerprint, static_cast<double>(st.fired) / secs};
}

}  // namespace

int main() {
  Params p;
  const bool smoke = std::getenv("CHEETAH_SIM_ENGINE_SMOKE") != nullptr;
  if (smoke) {
    p.total_events = 400'000;
  }

  LegacyLoop legacy;
  const RunResult before = Drive(legacy, p);

  EventLoop heap_loop(EventLoop::Engine::kHeap);
  const RunResult heap = Drive(heap_loop, p);

  EventLoop wheel_loop(EventLoop::Engine::kWheel);
  const RunResult wheel = Drive(wheel_loop, p);

  const double wheel_vs_legacy = wheel.events_per_sec / before.events_per_sec;
  const double heap_vs_legacy = heap.events_per_sec / before.events_per_sec;

  std::printf("=== sim engine speed: %llu events, %d timers ===\n",
              static_cast<unsigned long long>(p.total_events), p.actors);
  std::printf("%-22s %12.0f events/sec   fingerprint %016llx\n", "legacy pq+function",
              before.events_per_sec, static_cast<unsigned long long>(before.fingerprint));
  std::printf("%-22s %12.0f events/sec   fingerprint %016llx   (%.2fx)\n", "heap (reference)",
              heap.events_per_sec, static_cast<unsigned long long>(heap.fingerprint),
              heap_vs_legacy);
  std::printf("%-22s %12.0f events/sec   fingerprint %016llx   (%.2fx)\n", "wheel (default)",
              wheel.events_per_sec, static_cast<unsigned long long>(wheel.fingerprint),
              wheel_vs_legacy);

  {
    std::ofstream out("BENCH_sim_engine.json");
    out << "{\n"
        << "  \"events\": " << p.total_events << ",\n"
        << "  \"timers\": " << p.actors << ",\n"
        << "  \"legacy_events_per_sec\": " << static_cast<uint64_t>(before.events_per_sec)
        << ",\n"
        << "  \"heap_events_per_sec\": " << static_cast<uint64_t>(heap.events_per_sec) << ",\n"
        << "  \"wheel_events_per_sec\": " << static_cast<uint64_t>(wheel.events_per_sec)
        << ",\n"
        << "  \"wheel_vs_legacy\": " << wheel_vs_legacy << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << "\n"
        << "}\n";
  }
  std::printf("[bench] wrote BENCH_sim_engine.json\n");

  // Self-assertions. Determinism: all three engines must fire the identical
  // schedule. Speed: the wheel must not regress below a conservative floor of
  // the legacy engine's throughput (observed ratios run well above this; the
  // floor only catches real regressions, not scheduler jitter).
  if (heap.fingerprint != before.fingerprint || wheel.fingerprint != before.fingerprint) {
    std::fprintf(stderr, "FAIL: engine fingerprints diverge (legacy %016llx heap %016llx "
                         "wheel %016llx)\n",
                 static_cast<unsigned long long>(before.fingerprint),
                 static_cast<unsigned long long>(heap.fingerprint),
                 static_cast<unsigned long long>(wheel.fingerprint));
    return 1;
  }
  const double floor = smoke ? 0.8 : 1.0;
  if (wheel_vs_legacy < floor) {
    std::fprintf(stderr, "FAIL: wheel engine %.2fx of legacy, floor %.2fx\n", wheel_vs_legacy,
                 floor);
    return 1;
  }
  std::printf("OK: fingerprints identical, wheel %.2fx legacy (floor %.2fx)\n", wheel_vs_legacy,
              floor);
  return 0;
}
