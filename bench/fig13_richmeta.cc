// Fig. 13: the cost of rich metadata. One meta machine, no replication, data
// servers bypassed (instant acks); the rich meta service writes the full
// MetaX triple per put while the thin directory writes a single name->volume
// KV. The paper finds the rich service only slightly slower — the KV store
// batches the three writes into one atomic commit.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

double Measure(bool thin, int clients) {
  core::CheetahOptions options;
  options.thin_directory_mode = thin;
  core::TestbedConfig config = PaperCheetahConfig(options);
  config.meta_machines = 1;
  config.replication = 1;
  config.data_machines = 3;
  config.proxies = std::max(1, clients / 10);
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 11;  // 66 PVs -> 66 LVs at n=1
  config.pg_count = 64;
  config.data_disk = sim::DiskParams{.write_base = 0,
                                     .write_bw_bytes_per_sec = 1e15,
                                     .read_base = 0,
                                     .read_bw_bytes_per_sec = 1e15,
                                     .fsync_base = 0,
                                     .channels = 64};
  auto bench = MakeCheetah(std::move(config));
  auto r = RunPuts(bench.loop(), bench.clients, thin ? "thin-" : "rich-",
                   ScaledOps(5000), KiB(8), clients * 2);
  return r.throughput.OpsPerSec();
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 13: rich meta service vs thin directory (req/sec, 1 meta machine)");
  PrintTableHeader({"clients", "MetaService", "DirectoryService", "Meta/Dir"});
  for (int clients : {5, 10, 15, 20, 25, 30}) {
    const double rich = Measure(false, clients);
    const double thin = Measure(true, clients);
    std::printf("%-18d%-18.0f%-18.0f%-18.2f\n", clients, rich, thin,
                thin > 0 ? rich / thin : 0.0);
    std::fflush(stdout);
  }
  DumpObsJson("fig13_richmeta");
  return 0;
}
