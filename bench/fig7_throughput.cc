// Fig. 7: put throughput (requests/sec) as client-side concurrency grows
// from 100 to 1000, for 8KB/64KB/512KB objects, Cheetah vs Haystack.
//
// Paper shape: Cheetah is substantially ahead while the system is
// underloaded (throughput = concurrency / per-op latency); near saturation
// the gap narrows to a modest peak advantage.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const std::vector<int> concurrencies = {100, 200, 400, 600, 800, 1000};
  const std::vector<std::pair<uint64_t, const char*>> sizes = {
      {KiB(8), "8KB"}, {KiB(64), "64KB"}, {KiB(512), "512KB"}};

  PrintTitle("Fig. 7: PUT throughput (req/sec) vs concurrency");
  std::vector<std::string> cols = {"series"};
  for (int c : concurrencies) {
    cols.push_back(std::to_string(c));
  }
  PrintTableHeader(cols);

  for (const auto& [size, size_label] : sizes) {
    for (const bool cheetah : {true, false}) {
      std::printf("%-18s", ((cheetah ? std::string("Cheetah-") : std::string("Haystack-")) +
                            size_label)
                               .c_str());
      for (int concurrency : concurrencies) {
        const uint64_t ops = ScaledOps(size >= KiB(512) ? 2000 : 6000);
        double tput = 0;
        const std::string prefix =
            std::string(size_label) + "-c" + std::to_string(concurrency) + "-";
        if (cheetah) {
          auto bench = MakeCheetah();
          auto r = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency);
          tput = r.throughput.OpsPerSec();
        } else {
          auto bench = MakeHaystack();
          auto r = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency);
          tput = r.throughput.OpsPerSec();
        }
        std::printf("%-18.0f", tput);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  DumpObsJson("fig7_throughput");
  return 0;
}
