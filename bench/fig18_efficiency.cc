// Fig. 18: storage efficiency — total live object bytes divided by the
// capacity actually occupied on the data servers — sampled at the end of
// each day of the trace replay. With raw-block allocation and immediate
// reclamation, Cheetah stays above ~85% (the loss is block-rounding
// fragmentation); the dips in the paper come from scheduled batch deletes,
// which we reproduce at the end of each week.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  auto bench = MakeCheetah();
  auto sizes = workload::TraceSize();
  workload::NamePool pool("eff-");
  auto days = workload::TraceOpRatios(21);
  auto live = std::make_shared<std::map<std::string, uint64_t>>();

  PrintTitle("Fig. 18: storage efficiency at end of day (%)");
  PrintTableHeader({"day", "live bytes", "occupied bytes", "efficiency"});
  const uint64_t ops_per_day = ScaledOps(700);
  for (size_t d = 0; d < days.size(); ++d) {
    workload::MixedWorkload mix(days[d].put_ratio, days[d].delete_ratio, sizes, &pool);
    workload::RunnerConfig config;
    config.concurrency = 40;
    config.total_ops = ops_per_day;
    workload::Runner runner(bench.loop(), bench.clients, config);
    auto pending_sizes = std::make_shared<std::map<std::string, uint64_t>>();
    (void)runner.Run(
        [&mix, live, pending_sizes](Rng& rng) {
          workload::Op op = mix.Next(rng);
          if (op.type == workload::OpType::kPut) {
            (*pending_sizes)[op.name] = op.size;
          } else if (op.type == workload::OpType::kDelete) {
            live->erase(op.name);
          }
          return op;
        },
        [&pool, live, pending_sizes](const std::string& name) {
          pool.Add(name);
          auto it = pending_sizes->find(name);
          if (it != pending_sizes->end()) {
            (*live)[name] = it->second;
            pending_sizes->erase(it);
          }
        });
    // Weekly scheduled batch delete (the paper's dips).
    if ((d + 1) % 7 == 0 && !live->empty()) {
      std::vector<std::string> victims;
      size_t count = live->size() / 3;
      for (const auto& [name, size] : *live) {
        if (victims.size() >= count) {
          break;
        }
        victims.push_back(name);
      }
      for (const auto& name : victims) {
        live->erase(name);
      }
      (void)RunDeletes(bench.loop(), bench.clients, victims, victims.size(), 40);
    }
    bench.bed->RunFor(Seconds(1));  // cleaner/bitmap sync

    uint64_t live_bytes = 0;
    for (const auto& [name, size] : *live) {
      live_bytes += size;
    }
    // Occupied = block-rounded extents actually held on the devices, counted
    // once per logical volume (replicas store identical data).
    uint64_t occupied = 0;
    const auto& topo = bench.bed->meta(0).topology();
    for (int i = 0; i < bench.bed->num_data(); ++i) {
      auto& machine = bench.bed->data_machine(i);
      for (const auto& [pv_id, pv] : topo.pvs) {
        if (pv.data_server != machine.node_id()) {
          continue;
        }
        for (const auto& info : machine.disk(pv.disk_index % machine.num_disks())
                                    .ListVolumeExtents(pv.DeviceName())) {
          occupied += ((info.length + 4095) / 4096) * 4096;
        }
      }
    }
    occupied /= topo.replication;
    const double eff = occupied > 0 ? 100.0 * static_cast<double>(live_bytes) /
                                          static_cast<double>(occupied)
                                    : 100.0;
    std::printf("%-18zu%-18llu%-18llu%-18.1f\n", d + 1,
                static_cast<unsigned long long>(live_bytes),
                static_cast<unsigned long long>(occupied), eff);
    std::fflush(stdout);
  }
  DumpObsJson("fig18_efficiency");
  return 0;
}
