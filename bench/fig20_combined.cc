// Fig. 20: YCSB-style combined workloads. Delete ratio fixed at 10%, put
// ratio swept 10%..80% (gets take the rest), object sizes uniform in
// 4..512KB, concurrency 20. The paper shows throughput declining gently as
// the put ratio grows — Cheetah handles write-heavy mixes gracefully.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 20: combined-workload throughput (req/sec, conc 20)");
  PrintTableHeader({"PUT ratio (%)", "req/sec", "mean ms"});
  for (int put_pct : {10, 20, 30, 40, 50, 60, 70, 80}) {
    auto bench = MakeCheetah();
    workload::NamePool pool("ycsb-");
    // Seed the pool so early gets have targets.
    auto seeded = workload::Preload(bench.loop(), bench.clients, "seed-",
                                    ScaledOps(500), KiB(64));
    for (auto& name : seeded) {
      pool.Add(std::move(name));
    }
    workload::MixedWorkload mix(put_pct / 100.0, 0.10,
                                workload::UniformSize(KiB(4), KiB(512)), &pool);
    workload::RunnerConfig config;
    config.concurrency = 20;
    config.total_ops = ScaledOps(3000);
    workload::Runner runner(bench.loop(), bench.clients, config);
    auto results = runner.Run(
        [&mix](Rng& rng) { return mix.Next(rng); },
        [&pool](const std::string& name) { pool.Add(name); });
    std::printf("%-18d%-18.0f%-18.2f\n", put_pct, results.throughput.OpsPerSec(),
                results.all.MeanMillis());
    std::fflush(stdout);
  }
  DumpObsJson("fig20_combined");
  return 0;
}
