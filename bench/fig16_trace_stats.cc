// Fig. 16: characteristics of the synthesized production trace — per-day
// op-type ratios (writes dominate, deletes substantial because objects have
// lifecycles) and the object-size histogram (448-512KB dominates at ~56%).
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 16a: per-day op ratios of the synthesized 21-day trace (%)");
  PrintTableHeader({"day", "PUT", "GET", "DELETE"});
  auto days = workload::TraceOpRatios(21);
  for (size_t d = 0; d < days.size(); ++d) {
    std::printf("%-18zu%-18.1f%-18.1f%-18.1f\n", d + 1, days[d].put_ratio * 100,
                days[d].get_ratio * 100, days[d].delete_ratio * 100);
  }

  PrintTitle("Fig. 16b: object-size histogram (%, 64KB buckets)");
  PrintTableHeader({"bucket (KB)", "fraction"});
  Rng rng(0x516e);
  auto dist = workload::TraceSize();
  std::vector<uint64_t> buckets(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const uint64_t size = dist(rng);
    buckets[std::min<uint64_t>(7, size / KiB(64))]++;
  }
  const char* labels[] = {"0-64",    "64-128",  "128-192", "192-256",
                          "256-320", "320-384", "384-448", "448-512"};
  for (int b = 0; b < 8; ++b) {
    std::printf("%-18s%-18.1f\n", labels[b],
                100.0 * static_cast<double>(buckets[b]) / n);
  }
  DumpObsJson("fig16_trace_stats");
  return 0;
}
