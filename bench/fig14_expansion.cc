// Fig. 14: in-expansion performance. After preloading objects, one machine
// is added to the meta service (Cheetah / Cheetah-NoVG) or the OSD cluster
// (Ceph) and put/get performance is measured while any induced migration is
// in flight. VGs make Cheetah unaffected; Cheetah-NoVG chases its data to
// the reshuffled volumes; Ceph backfills remapped PGs.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

struct Numbers {
  double put_ms = 0;
  double get_ms = 0;
  double get_p99_ms = 0;
  double put_tput = 0;
  double get_tput = 0;
  uint64_t errors = 0;
};

Numbers MeasureDuring(sim::EventLoop& loop,
                      std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
                      const std::vector<std::string>& names, uint64_t ops) {
  Numbers out;
  {  // latency at conc 20 (Fig. 14a)
    auto put = RunPuts(loop, clients, "exp-lat-", ops / 4, KiB(64), 20);
    out.put_ms = put.put.MeanMillis();
    out.errors += put.errors;
    auto get = RunGets(loop, clients, names, ops / 4, 20);
    out.get_ms = get.get.MeanMillis();
    out.get_p99_ms = get.get.PercentileMillis(0.99);
    out.errors += get.errors;
  }
  {  // throughput at conc 500 (Fig. 14b)
    auto put = RunPuts(loop, clients, "exp-tp-", ops, KiB(64), 500);
    out.put_tput = put.throughput.OpsPerSec();
    out.errors += put.errors;
    auto get = RunGets(loop, clients, names, ops, 500);
    out.get_tput = get.throughput.OpsPerSec();
    out.errors += get.errors;
  }
  return out;
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const uint64_t preload = ScaledOps(8000);
  const uint64_t ops = ScaledOps(4000);

  std::vector<std::pair<std::string, Numbers>> rows;

  // Self-assert on the Cheetah row: expansion must be invisible to the
  // foreground — GET p99 while the meta view change/adoption is in flight
  // stays within a fixed multiple of steady state, and no foreground op
  // fails. (The baselines below are *expected* to degrade; no assert there.)
  double steady_get_p99 = 0;
  Numbers cheetah_during;
  {
    auto bench = MakeCheetah();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    auto steady = RunGets(bench.loop(), bench.clients, names, ops / 4, 20);
    steady_get_p99 = steady.get.PercentileMillis(0.99);
    auto added = bench.bed->AddMetaMachine();
    if (!added.ok()) {
      std::fprintf(stderr, "cheetah expansion failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
    cheetah_during = MeasureDuring(bench.loop(), bench.clients, names, ops);
    rows.emplace_back("Cheetah", cheetah_during);
  }
  {
    core::CheetahOptions options;
    options.no_volume_groups = true;
    auto bench = MakeCheetah(PaperCheetahConfig(options));
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    // Do not settle: measure while the PG-data migration runs.
    auto added = bench.bed->AddMetaMachine(/*settle=*/false);
    if (!added.ok()) {
      std::fprintf(stderr, "novg expansion failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
    rows.emplace_back("Cheetah-NoVG",
                      MeasureDuring(bench.loop(), bench.clients, names, ops));
  }
  {
    auto bench = MakeCeph();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    bench.cluster->AddOsd();  // backfill starts
    rows.emplace_back("Ceph in Migration",
                      MeasureDuring(bench.loop(), bench.clients, names, ops));
  }

  PrintTitle("Fig. 14a: in-expansion latency, 64KB conc 20 (ms)");
  PrintTableHeader({"system", "PUT", "GET"});
  for (const auto& [name, n] : rows) {
    std::printf("%-18s%-18.3f%-18.3f\n", name.c_str(), n.put_ms, n.get_ms);
  }
  PrintTitle("Fig. 14b: in-expansion throughput, 64KB conc 500 (req/sec)");
  PrintTableHeader({"system", "PUT", "GET"});
  for (const auto& [name, n] : rows) {
    std::printf("%-18s%-18.0f%-18.0f\n", name.c_str(), n.put_tput, n.get_tput);
  }
  DumpObsJson("fig14_expansion");

  constexpr double kP99Multiple = 3.0;
  bool ok = true;
  if (cheetah_during.errors != 0) {
    std::fprintf(stderr, "FAIL: %llu foreground ops failed during Cheetah expansion\n",
                 static_cast<unsigned long long>(cheetah_during.errors));
    ok = false;
  }
  if (cheetah_during.get_p99_ms > kP99Multiple * steady_get_p99) {
    std::fprintf(stderr,
                 "FAIL: in-expansion GET p99 %.3fms exceeds %.1fx steady-state %.3fms\n",
                 cheetah_during.get_p99_ms, kP99Multiple, steady_get_p99);
    ok = false;
  }
  if (!ok) {
    return 1;
  }
  std::printf("fig14: PASS (in-expansion GET p99 %.3fms <= %.1fx steady %.3fms, 0 errors)\n",
              cheetah_during.get_p99_ms, kP99Multiple, steady_get_p99);
  return 0;
}
