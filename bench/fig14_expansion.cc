// Fig. 14: in-expansion performance. After preloading objects, one machine
// is added to the meta service (Cheetah / Cheetah-NoVG) or the OSD cluster
// (Ceph) and put/get performance is measured while any induced migration is
// in flight. VGs make Cheetah unaffected; Cheetah-NoVG chases its data to
// the reshuffled volumes; Ceph backfills remapped PGs.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

struct Numbers {
  double put_ms = 0;
  double get_ms = 0;
  double put_tput = 0;
  double get_tput = 0;
};

Numbers MeasureDuring(sim::EventLoop& loop,
                      std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
                      const std::vector<std::string>& names, uint64_t ops) {
  Numbers out;
  {  // latency at conc 20 (Fig. 14a)
    auto put = RunPuts(loop, clients, "exp-lat-", ops / 4, KiB(64), 20);
    out.put_ms = put.put.MeanMillis();
    auto get = RunGets(loop, clients, names, ops / 4, 20);
    out.get_ms = get.get.MeanMillis();
  }
  {  // throughput at conc 500 (Fig. 14b)
    auto put = RunPuts(loop, clients, "exp-tp-", ops, KiB(64), 500);
    out.put_tput = put.throughput.OpsPerSec();
    auto get = RunGets(loop, clients, names, ops, 500);
    out.get_tput = get.throughput.OpsPerSec();
  }
  return out;
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const uint64_t preload = ScaledOps(8000);
  const uint64_t ops = ScaledOps(4000);

  std::vector<std::pair<std::string, Numbers>> rows;

  {
    auto bench = MakeCheetah();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    auto added = bench.bed->AddMetaMachine();
    if (!added.ok()) {
      std::fprintf(stderr, "cheetah expansion failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
    rows.emplace_back("Cheetah", MeasureDuring(bench.loop(), bench.clients, names, ops));
  }
  {
    core::CheetahOptions options;
    options.no_volume_groups = true;
    auto bench = MakeCheetah(PaperCheetahConfig(options));
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    // Do not settle: measure while the PG-data migration runs.
    auto added = bench.bed->AddMetaMachine(/*settle=*/false);
    if (!added.ok()) {
      std::fprintf(stderr, "novg expansion failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
    rows.emplace_back("Cheetah-NoVG",
                      MeasureDuring(bench.loop(), bench.clients, names, ops));
  }
  {
    auto bench = MakeCeph();
    auto names =
        workload::Preload(bench.loop(), bench.clients, "pre-", preload, KiB(64));
    bench.cluster->AddOsd();  // backfill starts
    rows.emplace_back("Ceph in Migration",
                      MeasureDuring(bench.loop(), bench.clients, names, ops));
  }

  PrintTitle("Fig. 14a: in-expansion latency, 64KB conc 20 (ms)");
  PrintTableHeader({"system", "PUT", "GET"});
  for (const auto& [name, n] : rows) {
    std::printf("%-18s%-18.3f%-18.3f\n", name.c_str(), n.put_ms, n.get_ms);
  }
  PrintTitle("Fig. 14b: in-expansion throughput, 64KB conc 500 (req/sec)");
  PrintTableHeader({"system", "PUT", "GET"});
  for (const auto& [name, n] : rows) {
    std::printf("%-18s%-18.0f%-18.0f\n", name.c_str(), n.put_tput, n.get_tput);
  }
  DumpObsJson("fig14_expansion");
  return 0;
}
