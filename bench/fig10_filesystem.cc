// Fig. 10: the impact of raw block I/O. Cheetah-FS data servers pay
// filesystem metadata overhead per data op (XFS-style file-backed volumes).
// The paper reports a ~10% impact for small writes, shrinking for large
// objects — much smaller than the ordering impact of Fig. 9.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 10: PUT throughput, raw block vs Cheetah-FS");
  PrintTableHeader({"cell", "RawBlock", "FS", "FS/Raw"});
  for (const auto& [size, size_label] : std::vector<std::pair<uint64_t, const char*>>{
           {KiB(8), "8KB"}, {KiB(64), "64KB"}, {KiB(512), "512KB"}}) {
    for (int concurrency : {20, 100, 500}) {
      if (size == KiB(512) && concurrency > 20) {
        continue;
      }
      const uint64_t ops = ScaledOps(4000);
      const std::string prefix =
          std::string(size_label) + "-" + std::to_string(concurrency) + "-";
      double raw = 0, fs = 0;
      {
        auto bench = MakeCheetah();
        raw = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency)
                  .throughput.OpsPerSec();
      }
      {
        core::CheetahOptions options;
        options.fs_backed_data = true;
        auto bench = MakeCheetah(PaperCheetahConfig(options));
        fs = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency)
                 .throughput.OpsPerSec();
      }
      std::printf("%-18s%-18.0f%-18.0f%-18.2f\n",
                  (std::string(size_label) + "-" + std::to_string(concurrency)).c_str(),
                  raw, fs, raw > 0 ? fs / raw : 0.0);
      std::fflush(stdout);
    }
  }
  DumpObsJson("fig10_filesystem");
  return 0;
}
