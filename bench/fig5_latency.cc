// Fig. 5: mean put/get/delete latency of Cheetah, Haystack, Tectonic, and
// Ceph for object sizes {8KB, 64KB, 512KB} x concurrency {20, 100, 500}.
//
// Paper shapes to reproduce: Cheetah beats Haystack on put by up to ~2.4x at
// 8KB-20 (parallel metadata/data writes, no separate offset-metadata I/O);
// Tectonic is worst (recursive metadata RPCs); Ceph sits between (layered
// OSD + journaling); get gap is small (~25%); delete is where Cheetah wins
// big (one meta round trip vs Haystack's three-step sequence).
#include <functional>

#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

struct Cell {
  uint64_t size;
  int concurrency;
  const char* label;
};

const Cell kCells[] = {
    {KiB(8), 20, "8KB-20"},    {KiB(8), 100, "8KB-100"},   {KiB(8), 500, "8KB-500"},
    {KiB(64), 20, "64KB-20"},  {KiB(64), 100, "64KB-100"}, {KiB(64), 500, "64KB-500"},
    {KiB(512), 20, "512KB-20"},
};

struct SystemRow {
  std::string name;
  std::vector<double> put_ms;
  std::vector<double> get_ms;
  std::vector<double> del_ms;
};

template <typename MakeFn>
SystemRow MeasureSystem(const std::string& name, MakeFn make) {
  SystemRow row;
  row.name = name;
  const uint64_t puts_per_cell = ScaledOps(2000);
  const uint64_t gets_per_cell = ScaledOps(800);
  const uint64_t dels_per_cell = ScaledOps(800);
  for (const Cell& cell : kCells) {
    auto bench = make();
    auto puts = RunPuts(bench.loop(), bench.clients, std::string(cell.label) + "-",
                        puts_per_cell, cell.size, cell.concurrency);
    row.put_ms.push_back(puts.put.MeanMillis());
    std::vector<std::string> names;
    for (uint64_t i = 0; i < puts_per_cell; ++i) {
      names.push_back(std::string(cell.label) + "-" + std::to_string(i));
    }
    auto gets = RunGets(bench.loop(), bench.clients, names, gets_per_cell, cell.concurrency);
    row.get_ms.push_back(gets.get.MeanMillis());
    auto dels =
        RunDeletes(bench.loop(), bench.clients, names, dels_per_cell, cell.concurrency);
    row.del_ms.push_back(dels.del.MeanMillis());
    std::fprintf(stderr, "  [%s %s] put=%.3fms get=%.3fms del=%.3fms (errors=%llu)\n",
                 name.c_str(), cell.label, row.put_ms.back(), row.get_ms.back(),
                 row.del_ms.back(),
                 static_cast<unsigned long long>(puts.errors + gets.errors + dels.errors));
  }
  return row;
}

void PrintFigure(const char* title, const std::vector<SystemRow>& rows,
                 std::vector<double> SystemRow::*member) {
  PrintTitle(title);
  std::vector<std::string> cols = {"system"};
  for (const Cell& cell : kCells) {
    cols.push_back(cell.label);
  }
  PrintTableHeader(cols);
  for (const auto& row : rows) {
    std::printf("%-18s", row.name.c_str());
    for (double v : row.*member) {
      std::printf("%-18.3f", v);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  std::vector<SystemRow> rows;
  rows.push_back(MeasureSystem("Cheetah", [] { return MakeCheetah(); }));
  rows.push_back(MeasureSystem("Haystack", [] { return MakeHaystack(); }));
  rows.push_back(MeasureSystem("Tectonic", [] { return MakeTectonic(); }));
  rows.push_back(MeasureSystem("Ceph", [] { return MakeCeph(); }));

  PrintFigure("Fig. 5a: mean PUT latency (ms)", rows, &SystemRow::put_ms);
  PrintFigure("Fig. 5b: mean GET latency (ms)", rows, &SystemRow::get_ms);
  PrintFigure("Fig. 5c: mean DELETE latency (ms)", rows, &SystemRow::del_ms);
  DumpObsJson("fig5_latency");
  return 0;
}
