// Fig. 21 (extension): graceful degradation under overload, QoS on vs off.
//
// A Cheetah cluster with deliberately constrained meta-server CPU serves
// open-loop foreground GETs at a sweep of offered loads (0.5x / 0.8x / 1.2x
// of measured saturation) while background PG-pull traffic — a recovery
// storm — hammers the same meta servers from a third proxy. With QoS off,
// FIFO dispatch lets the storm and the excess arrivals queue without bound
// and foreground p99 explodes; with QoS on, weighted-fair scheduling plus
// CoDel shedding of low classes keeps foreground latency bounded, and the
// shed background pulls complete once the foreground load drops.
//
// The binary asserts the PR's acceptance criteria and exits non-zero when
// they do not hold, so it doubles as the `qos` check tier's smoke test
// (CHEETAH_FIG21_SMOKE=1 shrinks every dimension).
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/messages.h"
#include "src/qos/qos.h"
#include "src/qos/scheduler.h"

namespace cheetah::bench {
namespace {

bool Smoke() { return std::getenv("CHEETAH_FIG21_SMOKE") != nullptr; }

struct Fig21Scale {
  uint64_t preload;         // objects available to GET
  uint64_t saturation_ops;  // closed-loop ops used to find the knee
  Nanos window;             // open-loop issue window per cell
  Nanos drain;              // quiet period after the window (background catch-up)
};

Fig21Scale TheScale() {
  if (Smoke()) {
    return {200, 500, Seconds(1), Seconds(2)};
  }
  const double s = Scale();
  return {std::max<uint64_t>(200, static_cast<uint64_t>(1200 * s)),
          std::max<uint64_t>(500, static_cast<uint64_t>(3000 * s)), Seconds(3),
          Seconds(3)};
}

// Meta servers get few cores and a fat per-request CPU cost so the
// saturation point sits at a rate the simulator sweeps quickly; everything
// else keeps paper-shaped defaults.
core::TestbedConfig Fig21Config(bool qos_on) {
  core::TestbedConfig config = PaperCheetahConfig();
  config.meta_cpu_cores = 2;
  config.handler_costs.base = Micros(300);
  config.options.qos.enabled = qos_on;
  // Latency-sensitive deployment: weight foreground even harder than the
  // default 8:2 over the storm's class, and start shedding sooner.
  config.options.qos.weights[static_cast<size_t>(qos::TrafficClass::kForeground)] = 16;
  config.options.qos.codel_target = Millis(3);
  return config;
}

// Shared state of the background recovery storm.
struct BgState {
  uint64_t pulls_completed = 0;
  uint64_t pushbacks = 0;  // kOverloaded bounces honored via retry-after
  uint64_t pull_errors = 0;
  Nanos gap = 0;  // per-puller pacing between pull rounds
  bool stop = false;
};

// The storm is a wide closed-loop fan-in — every puller always has a pull
// outstanding — modeling simultaneous PG recovery by many nodes. Wide enough
// that under FIFO it claims a large share of meta CPU at any foreground load.
constexpr int kPullers = 64;

// One puller: repeatedly transfers a PG page-by-page from a meta server,
// honoring retry-after pushback, pacing itself to its share of the offered
// background rate. Runs on the third proxy's machine, outside the proxies
// serving foreground traffic.
sim::Task<> BgPuller(rpc::Node* rpc, core::Testbed* bed, std::shared_ptr<BgState> st,
                     int idx) {
  uint32_t pg = static_cast<uint32_t>(idx) * 7;
  int meta = idx % bed->num_meta();
  while (!st->stop) {
    const cluster::PgId target = pg++ % bed->config().pg_count;
    std::string cursor;
    bool complete = false;
    while (!complete && !st->stop) {
      core::PgPullRequest req;
      req.pg = target;
      req.start_after = cursor;
      req.limit = 512;
      auto r = co_await rpc->Call(bed->meta_node(meta), std::move(req), Millis(500));
      if (r.ok()) {
        if (r->next_start_after.empty()) {
          complete = true;
        } else {
          cursor = r->next_start_after;
        }
      } else if (r.status().IsOverloaded()) {
        ++st->pushbacks;
        co_await sim::SleepFor(qos::RetryAfterOf(r.status(), Millis(50)));
      } else {
        ++st->pull_errors;
        co_await sim::SleepFor(Millis(50));
        break;  // abandon this PG round, move on
      }
    }
    if (complete) {
      ++st->pulls_completed;
      meta = (meta + 1) % bed->num_meta();
    }
    co_await sim::SleepFor(st->gap);
  }
}

struct CellResult {
  double frac = 0;
  double offered = 0;  // ops/s
  double p50_ms = 0;
  double p99_ms = 0;
  double svc_p99_ms = 0;  // completion minus actual issue (CO comparison)
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t fg_sheds = 0;
  uint64_t bg_sheds = 0;
  uint64_t bg_during = 0;  // pulls completed while foreground load was live
  uint64_t bg_after = 0;   // pulls completed including the drain window
};

std::shared_ptr<BgState> StartStorm(core::Testbed& bed) {
  auto st = std::make_shared<BgState>();
  st->gap = Micros(200);
  for (int i = 0; i < kPullers; ++i) {
    bed.proxy_machine(2).actor().Spawn(BgPuller(&bed.proxy_rpc(2), &bed, st, i));
  }
  return st;
}

// Closed-loop knee *with the storm running* and QoS off: the foreground
// throughput an operator actually observes from the FIFO cluster while
// recovery is in flight. The open-loop sweep offers fractions of this, so
// "1.2x saturation" means 20% past the knee of the deployed system — which
// QoS, by shedding the storm, can move.
double MeasureSaturation(const Fig21Scale& scale) {
  CheetahBench bench = MakeCheetah(Fig21Config(/*qos_on=*/false));
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> fg = {bench.clients[0],
                                                                    bench.clients[1]};
  auto names =
      workload::Preload(bench.loop(), fg, "f21-", scale.preload, KiB(8), 64);
  auto st = StartStorm(*bench.bed);
  auto res = RunGets(bench.loop(), fg, names, scale.saturation_ops, 128);
  st->stop = true;
  return res.throughput.OpsPerSec();
}

CellResult RunCell(bool qos_on, double frac, double saturation, const Fig21Scale& scale) {
  CheetahBench bench = MakeCheetah(Fig21Config(qos_on));
  core::Testbed& bed = *bench.bed;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> fg = {bench.clients[0],
                                                                    bench.clients[1]};
  auto names =
      workload::Preload(bench.loop(), fg, "f21-", scale.preload, KiB(8), 64);

  auto st = StartStorm(bed);

  workload::RunnerConfig rc;
  rc.arrival = workload::ArrivalMode::kOpen;
  rc.offered_ops_per_sec = frac * saturation;
  rc.duration = scale.window;
  rc.total_ops = 0;
  rc.seed = 21;
  workload::Runner runner(bed.loop(), fg, rc);
  auto res = runner.Run([&names](Rng& rng) {
    workload::Op op;
    op.type = workload::OpType::kGet;
    op.name = names[rng.Uniform(names.size())];
    return op;
  });

  CellResult cell;
  cell.frac = frac;
  cell.offered = rc.offered_ops_per_sec;
  cell.p50_ms = res.get.PercentileMillis(0.50);
  cell.p99_ms = res.get.PercentileMillis(0.99);
  cell.svc_p99_ms = res.service.PercentileMillis(0.99);
  cell.completed = res.get.count();
  cell.errors = res.errors + res.not_found;
  cell.bg_during = st->pulls_completed;
  bed.RunFor(scale.drain);  // foreground gone: shed background catches up
  cell.bg_after = st->pulls_completed;
  st->stop = true;
  for (int m = 0; m < bed.num_meta(); ++m) {
    if (const qos::Scheduler* s = bed.meta_scheduler(m)) {
      cell.fg_sheds += s->sheds(qos::TrafficClass::kForeground);
      cell.bg_sheds += s->sheds(qos::TrafficClass::kBackground);
    }
  }
  std::fprintf(stderr,
               "  [qos=%s %.1fx] p50=%.2fms p99=%.2fms svc_p99=%.2fms done=%llu "
               "err=%llu bg=%llu(+%llu) sheds fg=%llu bg=%llu pushback=%llu\n",
               qos_on ? "on " : "off", frac, cell.p50_ms, cell.p99_ms, cell.svc_p99_ms,
               static_cast<unsigned long long>(cell.completed),
               static_cast<unsigned long long>(cell.errors),
               static_cast<unsigned long long>(cell.bg_during),
               static_cast<unsigned long long>(cell.bg_after - cell.bg_during),
               static_cast<unsigned long long>(cell.fg_sheds),
               static_cast<unsigned long long>(cell.bg_sheds),
               static_cast<unsigned long long>(st->pushbacks));
  return cell;
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const Fig21Scale scale = TheScale();
  const double saturation = MeasureSaturation(scale);
  std::fprintf(stderr, "  saturation (closed loop, storm active, qos off): %.0f ops/s\n",
               saturation);

  const double kFractions[] = {0.5, 0.8, 1.2};
  std::vector<CellResult> off, on;
  for (double f : kFractions) {
    off.push_back(RunCell(false, f, saturation, scale));
  }
  for (double f : kFractions) {
    on.push_back(RunCell(true, f, saturation, scale));
  }

  PrintTitle("Fig. 21: foreground GET latency vs offered load under a background storm");
  PrintTableHeader({"qos", "offered_x", "offered_ops", "p50_ms", "p99_ms", "errors",
                    "fg_sheds", "bg_sheds", "bg_pulls"});
  auto print_row = [](const char* mode, const CellResult& c) {
    std::printf("%-18s%-18.1f%-18.0f%-18.2f%-18.2f%-18llu%-18llu%-18llu%-18llu\n", mode,
                c.frac, c.offered, c.p50_ms, c.p99_ms,
                static_cast<unsigned long long>(c.errors),
                static_cast<unsigned long long>(c.fg_sheds),
                static_cast<unsigned long long>(c.bg_sheds),
                static_cast<unsigned long long>(c.bg_after));
  };
  for (const auto& c : off) {
    print_row("qos-off", c);
  }
  for (const auto& c : on) {
    print_row("qos-on", c);
  }

  DumpObsJson("fig21_overload");

  // ---- acceptance criteria ----
  bool ok = true;
  const CellResult& hot_off = off.back();
  const CellResult& hot_on = on.back();
  if (!(hot_on.p99_ms * 3.0 <= hot_off.p99_ms)) {
    std::fprintf(stderr,
                 "FAIL: at 1.2x saturation, QoS-on p99 (%.2fms) is not >=3x lower "
                 "than QoS-off (%.2fms)\n",
                 hot_on.p99_ms, hot_off.p99_ms);
    ok = false;
  }
  if (!(hot_on.bg_after > hot_on.bg_during)) {
    std::fprintf(stderr,
                 "FAIL: background pulls did not make progress after the foreground "
                 "load dropped (during=%llu after=%llu)\n",
                 static_cast<unsigned long long>(hot_on.bg_during),
                 static_cast<unsigned long long>(hot_on.bg_after));
    ok = false;
  }
  if (hot_on.fg_sheds != 0 && hot_on.bg_sheds == 0) {
    std::fprintf(stderr, "FAIL: QoS shed foreground traffic before background\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nOK: QoS-on p99 at 1.2x = %.2fms vs QoS-off %.2fms (%.1fx lower); "
                "background completed %llu pulls after load dropped\n",
                hot_on.p99_ms, hot_off.p99_ms,
                hot_off.p99_ms / std::max(hot_on.p99_ms, 1e-9),
                static_cast<unsigned long long>(hot_on.bg_after - hot_on.bg_during));
  }
  return ok ? 0 : 1;
}
