// Fig. 6: decomposition of the 8KB put latency from the client proxy's
// perspective — Pre-MDS (preprocess + send), MDS-1 (allocation reply),
// MDS-2 (MetaX-persisted ack, measured from MDS-1), Pre-DS (data send), and
// DS (data ack, measured from Pre-DS). In the parallel design MDS-2 largely
// overlaps DS, so the end-to-end latency is far below the phase sum.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 6: 8KB PUT latency decomposition (us, per-phase means)");
  PrintTableHeader({"cell", "Pre-MDS", "MDS-1", "MDS-2", "Pre-DS", "DS", "total(ms)"});
  for (int concurrency : {20, 100, 500}) {
    auto bench = MakeCheetah();
    const uint64_t ops = ScaledOps(3000);
    auto results =
        RunPuts(bench.loop(), bench.clients,
                "dec" + std::to_string(concurrency) + "-", ops, KiB(8), concurrency);
    core::ClientProxy::Breakdown total;
    for (int i = 0; i < bench.bed->num_proxies(); ++i) {
      const auto& b = bench.bed->proxy(i).breakdown();
      total.pre_mds += b.pre_mds;
      total.mds1 += b.mds1;
      total.mds2 += b.mds2;
      total.pre_ds += b.pre_ds;
      total.ds += b.ds;
      total.samples += b.samples;
    }
    const double n = static_cast<double>(std::max<uint64_t>(total.samples, 1));
    std::printf("%-18s%-18.1f%-18.1f%-18.1f%-18.1f%-18.1f%-18.3f\n",
                ("8KB-" + std::to_string(concurrency)).c_str(), total.pre_mds / n / 1e3,
                total.mds1 / n / 1e3, total.mds2 / n / 1e3, total.pre_ds / n / 1e3,
                total.ds / n / 1e3, results.put.MeanMillis());
  }
  return 0;
}
