// Fig. 6: decomposition of the 8KB put latency from the client proxy's
// perspective — Pre-MDS (preprocess + send), MDS-1 (allocation reply),
// MDS-2 (MetaX-persisted ack, measured from MDS-1), Pre-DS (data send), and
// DS (data ack, measured from Pre-DS). In the parallel design MDS-2 largely
// overlaps DS, so the end-to-end latency is far below the phase sum.
//
// The phases are derived from the obs::Tracer span log rather than
// hand-placed timers in the proxy: every put op records a root span, the
// PutAllocRequest / DataWriteRequest RPC spans, and the persist-wait span,
// which is enough to reconstruct the paper's breakdown (and, for the OW
// variant, shows MDS-2 folding into MDS-1). Results also land in
// fig6_decomposition.json for machine consumption.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"

namespace {

using cheetah::Nanos;
using cheetah::obs::Span;
using cheetah::obs::SpanKind;

struct Phases {
  double pre_mds = 0;
  double mds1 = 0;
  double mds2 = 0;
  double pre_ds = 0;
  double ds = 0;
  uint64_t samples = 0;
};

// One pass over the span log, grouping the spans of each put operation.
// Ops that retried (more than one alloc RPC) or failed are skipped: Fig. 6
// describes the clean-path pipeline.
Phases DerivePhases() {
  struct PerOp {
    const Span* root = nullptr;
    const Span* alloc = nullptr;
    const Span* wait = nullptr;
    int allocs = 0;
    Nanos data_start = ~0ull;
    Nanos data_end = 0;
    int data_writes = 0;
  };
  const auto& tracer = cheetah::obs::Tracer::Global();
  std::unordered_map<uint64_t, PerOp> ops;
  for (const Span& s : tracer.spans()) {
    PerOp& po = ops[s.op];
    if (s.kind == SpanKind::kOp && s.name == "put") {
      po.root = &s;
    } else if (s.kind == SpanKind::kRpc && s.name == "rpc.PutAllocRequest") {
      ++po.allocs;
      if (po.alloc == nullptr) po.alloc = &s;
    } else if (s.kind == SpanKind::kWait && s.name == "put.persist_wait") {
      po.wait = &s;
    } else if (s.kind == SpanKind::kRpc && s.name == "rpc.DataWriteRequest") {
      po.data_start = std::min(po.data_start, s.start);
      po.data_end = std::max(po.data_end, s.end);
      ++po.data_writes;
    }
  }

  Phases total;
  for (const auto& [op_id, po] : ops) {
    (void)op_id;
    if (po.root == nullptr || !po.root->ok || po.root->end == 0) continue;
    if (po.allocs != 1 || po.alloc->end == 0 || po.data_writes == 0) continue;
    const Nanos alloc_end = po.alloc->end;
    total.pre_mds += static_cast<double>(po.alloc->start - po.root->start);
    total.mds1 += static_cast<double>(alloc_end - po.alloc->start);
    if (po.wait != nullptr && po.wait->end > alloc_end) {
      total.mds2 += static_cast<double>(po.wait->end - alloc_end);
    }
    if (po.data_start > alloc_end) {
      total.pre_ds += static_cast<double>(po.data_start - alloc_end);
    }
    total.ds += static_cast<double>(po.data_end - po.data_start);
    ++total.samples;
  }
  return total;
}

struct Row {
  std::string cell;
  int concurrency = 0;
  bool ordered_writes = false;
  Phases phases;
  double total_ms = 0;
};

}  // namespace

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 6: 8KB PUT latency decomposition (us, per-phase means, trace-derived)");
  PrintTableHeader({"cell", "Pre-MDS", "MDS-1", "MDS-2", "Pre-DS", "DS", "total(ms)"});

  struct Cell {
    int concurrency;
    bool ordered_writes;
  };
  std::vector<Row> rows;
  for (const Cell cell : {Cell{20, false}, Cell{100, false}, Cell{500, false},
                          Cell{100, true}}) {
    core::CheetahOptions options;
    options.ordered_writes = cell.ordered_writes;
    auto bench = MakeCheetah(PaperCheetahConfig(options));
    const std::string tag = "8KB-" + std::to_string(cell.concurrency) +
                            (cell.ordered_writes ? "-OW" : "");
    // Untraced warm-up so topology fetches don't pollute the measured ops.
    RunPuts(bench.loop(), bench.clients, "warm-" + tag + "-", 50, KiB(8),
            cell.concurrency);
    EnableTracing();
    const uint64_t ops = ScaledOps(3000);
    auto results = RunPuts(bench.loop(), bench.clients, "dec-" + tag + "-", ops,
                           KiB(8), cell.concurrency);
    DisableTracing();

    Row row;
    row.cell = tag;
    row.concurrency = cell.concurrency;
    row.ordered_writes = cell.ordered_writes;
    row.phases = DerivePhases();
    row.total_ms = results.put.MeanMillis();
    rows.push_back(row);

    const Phases& t = row.phases;
    const double n = static_cast<double>(std::max<uint64_t>(t.samples, 1));
    std::printf("%-18s%-18.1f%-18.1f%-18.1f%-18.1f%-18.1f%-18.3f\n", tag.c_str(),
                t.pre_mds / n / 1e3, t.mds1 / n / 1e3, t.mds2 / n / 1e3,
                t.pre_ds / n / 1e3, t.ds / n / 1e3, row.total_ms);
    obs::Tracer::Global().Clear();
  }

  std::ofstream json("fig6_decomposition.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double n = static_cast<double>(std::max<uint64_t>(r.phases.samples, 1));
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"cell\":\"%s\",\"concurrency\":%d,\"ordered_writes\":%s,"
                  "\"samples\":%llu,\"pre_mds_us\":%.2f,\"mds1_us\":%.2f,"
                  "\"mds2_us\":%.2f,\"pre_ds_us\":%.2f,\"ds_us\":%.2f,"
                  "\"total_ms\":%.3f}%s\n",
                  r.cell.c_str(), r.concurrency,
                  r.ordered_writes ? "true" : "false",
                  static_cast<unsigned long long>(r.phases.samples),
                  r.phases.pre_mds / n / 1e3, r.phases.mds1 / n / 1e3,
                  r.phases.mds2 / n / 1e3, r.phases.pre_ds / n / 1e3,
                  r.phases.ds / n / 1e3, r.total_ms,
                  i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "]\n";
  std::printf("[obs] wrote fig6_decomposition.json\n");
  DumpObsJson("fig6_decomposition");
  return 0;
}
