// Scrub-overhead bench: what does background integrity scrubbing cost the
// foreground path?
//
// Two identical paper-shaped clusters run the same preload + closed-loop GET
// workload, one with the scrubber off and one with it re-walking every volume
// on a short interval. Because scrub probes travel in the maintenance QoS
// class, the WFQ scheduler should keep the foreground GET p99 within 2x of
// the scrub-off baseline (the PR's acceptance bound) even while the scrubber
// continuously audits checksums underneath the workload.
//
// The scrub-on side then takes a bit-rot hit after the measured window and
// must repair every damaged extent before a final audit pass, so the binary
// also smoke-tests the detect -> repair pipeline end to end. It asserts both
// criteria and exits non-zero when they do not hold; CHEETAH_SCRUB_SMOKE=1
// shrinks every dimension so scripts/check.sh can run it as the `integrity`
// tier's bench smoke.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/scrubber.h"

namespace cheetah::bench {
namespace {

using core::MetaServer;
using core::Testbed;

bool Smoke() { return std::getenv("CHEETAH_SCRUB_SMOKE") != nullptr; }

struct ScrubScale {
  uint64_t preload;      // objects available to GET
  uint64_t get_ops;      // measured closed-loop gets
  int concurrency;       // closed-loop workers
};

ScrubScale PickScale() {
  if (Smoke()) {
    return {/*preload=*/200, /*get_ops=*/800, /*concurrency=*/12};
  }
  return {ScaledOps(1500), ScaledOps(8000), 48};
}

struct SideResult {
  workload::RunnerResults gets;
  uint64_t scrubbed_objects = 0;
  uint64_t scrub_repairs = 0;
  uint64_t injected_extents = 0;
  uint64_t residual_corrupt = 0;  // audit-pass corrupt_found delta
};

void ScrubAllOnce(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->ScrubNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

uint64_t TotalCorruptFound(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    total += bed.meta(i).scrubber().stats().corrupt_found;
  }
  return total;
}

SideResult RunSide(bool scrub_on, const ScrubScale& scale) {
  core::CheetahOptions options;
  options.qos.enabled = true;
  options.scrub_interval = scrub_on ? Millis(100) : Nanos{0};
  CheetahBench bench = MakeCheetah(PaperCheetahConfig(options));

  const std::vector<std::string> names =
      workload::Preload(bench.loop(), bench.clients, "scrub-", scale.preload, KiB(64));
  // Let the first scrub pass (if any) start before measuring, so the measured
  // window overlaps steady-state scrubbing rather than an idle scrubber.
  bench.bed->RunFor(Seconds(1));

  SideResult side;
  side.gets = RunGets(bench.loop(), bench.clients, names, scale.get_ops, scale.concurrency);

  if (scrub_on) {
    // Repair demo: rot a slice of at-rest extents on a third of the cluster,
    // give the periodic scrubber a fixed virtual-time budget, then audit that
    // a fresh pass finds nothing left to repair.
    for (int i = 0; i < bench.bed->num_data(); i += 3) {
      sim::Machine& m = bench.bed->data_machine(i);
      for (size_t d = 0; d < m.num_disks(); ++d) {
        m.disk(d).InjectBitRot(0.02, 0x5c72bu ^ (static_cast<uint64_t>(i) << 8) ^ d);
      }
    }
    for (int i = 0; i < bench.bed->num_data(); ++i) {
      sim::Machine& m = bench.bed->data_machine(i);
      for (size_t d = 0; d < m.num_disks(); ++d) {
        side.injected_extents += m.disk(d).bitrot_extents();
      }
    }
    bench.bed->RunFor(Seconds(2));
    ScrubAllOnce(*bench.bed);
    const uint64_t corrupt_before_audit = TotalCorruptFound(*bench.bed);
    ScrubAllOnce(*bench.bed);
    side.residual_corrupt = TotalCorruptFound(*bench.bed) - corrupt_before_audit;
  }

  for (int i = 0; i < bench.bed->num_meta(); ++i) {
    const core::Scrubber::Stats s = bench.bed->meta(i).scrubber().stats();
    side.scrubbed_objects += s.objects;
    side.scrub_repairs += s.repairs;
  }
  return side;
}

void PrintRow(const char* label, const SideResult& side) {
  std::printf("%-18s%-18.0f%-18.3f%-18.3f%-18.3f%-18llu%-18llu\n", label,
              side.gets.throughput.OpsPerSec(), side.gets.get.MeanMillis(),
              side.gets.get.PercentileMillis(0.50), side.gets.get.PercentileMillis(0.99),
              static_cast<unsigned long long>(side.scrubbed_objects),
              static_cast<unsigned long long>(side.scrub_repairs));
}

int Run() {
  const ScrubScale scale = PickScale();
  PrintTitle("Scrub overhead: foreground GET latency, scrubber off vs on");
  std::printf("preload=%llu gets=%llu concurrency=%d%s\n",
              static_cast<unsigned long long>(scale.preload),
              static_cast<unsigned long long>(scale.get_ops), scale.concurrency,
              Smoke() ? " (smoke)" : "");

  const SideResult off = RunSide(/*scrub_on=*/false, scale);
  const SideResult on = RunSide(/*scrub_on=*/true, scale);

  PrintTableHeader({"side", "gets/s", "mean ms", "p50 ms", "p99 ms", "scrubbed", "repairs"});
  PrintRow("scrub-off", off);
  PrintRow("scrub-on", on);

  DumpObsJson("scrub_overhead");

  int failures = 0;
  const double p99_off = off.gets.get.PercentileMillis(0.99);
  const double p99_on = on.gets.get.PercentileMillis(0.99);
  if (off.gets.errors != 0 || on.gets.errors != 0) {
    std::fprintf(stderr, "FAIL: foreground gets saw errors (off=%llu on=%llu)\n",
                 static_cast<unsigned long long>(off.gets.errors),
                 static_cast<unsigned long long>(on.gets.errors));
    ++failures;
  }
  if (p99_off <= 0.0 || p99_on > 2.0 * p99_off) {
    std::fprintf(stderr, "FAIL: scrub-on GET p99 %.3fms exceeds 2x scrub-off %.3fms\n",
                 p99_on, p99_off);
    ++failures;
  }
  if (on.scrubbed_objects == 0) {
    std::fprintf(stderr, "FAIL: scrubber never audited an object\n");
    ++failures;
  }
  if (on.injected_extents == 0 || on.scrub_repairs == 0) {
    std::fprintf(stderr, "FAIL: repair demo did no work (injected=%llu repairs=%llu)\n",
                 static_cast<unsigned long long>(on.injected_extents),
                 static_cast<unsigned long long>(on.scrub_repairs));
    ++failures;
  }
  if (on.residual_corrupt != 0) {
    std::fprintf(stderr, "FAIL: audit pass still found %llu corrupt replicas\n",
                 static_cast<unsigned long long>(on.residual_corrupt));
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nPASS: p99 %.3fms -> %.3fms (<= 2x), %llu extents rotted, "
                "%llu repairs, audit clean\n",
                p99_off, p99_on, static_cast<unsigned long long>(on.injected_extents),
                static_cast<unsigned long long>(on.scrub_repairs));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cheetah::bench

int main() { return cheetah::bench::Run(); }
