// §7 read-optimization ablation: with the proxy metadata cache, a cache-hit
// get overlaps the authoritative metadata lookup with the data read; without
// it, the two round trips serialize. Not a paper figure — an ablation for
// the design choice §7 describes ("C will perform Step (2) and Steps (3)(4)
// in parallel").
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

double MeasureGetLatency(bool cache, uint64_t size) {
  core::CheetahOptions options;
  options.enable_read_cache = cache;
  auto bench = MakeCheetah(PaperCheetahConfig(options));
  auto names = workload::Preload(bench.loop(), bench.clients, "rc-", ScaledOps(2000), size);
  // Read each object a few times from the same proxies that wrote it (the
  // cache-hit scenario the paper describes).
  auto r = RunGets(bench.loop(), bench.clients, names, ScaledOps(4000), 20);
  return r.get.MeanMillis();
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("§7 read optimization: GET latency with/without the proxy metadata cache");
  PrintTableHeader({"object size", "cached (ms)", "uncached (ms)", "speedup"});
  for (const auto& [size, label] : std::vector<std::pair<uint64_t, const char*>>{
           {KiB(8), "8KB"}, {KiB(64), "64KB"}, {KiB(512), "512KB"}}) {
    const double with_cache = MeasureGetLatency(true, size);
    const double without = MeasureGetLatency(false, size);
    std::printf("%-18s%-18.3f%-18.3f%-18.2f\n", label, with_cache, without,
                with_cache > 0 ? without / with_cache : 0.0);
    std::fflush(stdout);
  }
  DumpObsJson("read_cache_ablation");
  return 0;
}
