// Fig. 17: replay of the synthesized production trace (Fig. 16's op and
// size distributions, timestamps ignored as in the paper) against Cheetah,
// Haystack, and Ceph. Reports mean PUT/DEL/ALL latency and overall
// throughput. Paper shape: Cheetah ahead of Haystack on every metric, both
// ahead of Ceph on throughput.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

struct TraceResult {
  double put_ms, del_ms, all_ms, tput;
};

TraceResult Replay(sim::EventLoop& loop,
                   std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients) {
  const uint64_t ops_per_day = ScaledOps(800);
  auto days = workload::TraceOpRatios(21);
  workload::NamePool pool("trace-");
  workload::LatencyRecorder put, del, all;
  uint64_t total_ops = 0;
  const Nanos t0 = loop.Now();
  auto sizes = workload::TraceSize();
  for (const auto& day : days) {
    workload::MixedWorkload mix(day.put_ratio, day.delete_ratio, sizes, &pool);
    workload::RunnerConfig config;
    config.concurrency = 50;
    config.total_ops = ops_per_day;
    workload::Runner runner(loop, clients, config);
    auto results = runner.Run(
        [&mix](Rng& rng) { return mix.Next(rng); },
        [&pool](const std::string& name) { pool.Add(name); });
    // Fold the day's samples into the trace totals.
    put.Merge(results.put);
    del.Merge(results.del);
    all.Merge(results.all);
    total_ops += results.all.count();
  }
  TraceResult out;
  out.put_ms = put.MeanMillis();
  out.del_ms = del.MeanMillis();
  out.all_ms = all.MeanMillis();
  out.tput = static_cast<double>(total_ops) / (static_cast<double>(loop.Now() - t0) / 1e9);
  return out;
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  std::vector<std::pair<std::string, TraceResult>> rows;
  {
    auto bench = MakeCheetah();
    rows.emplace_back("Cheetah", Replay(bench.loop(), bench.clients));
  }
  {
    auto bench = MakeHaystack();
    rows.emplace_back("Haystack", Replay(bench.loop(), bench.clients));
  }
  {
    auto bench = MakeCeph();
    rows.emplace_back("Ceph (BlueStore)", Replay(bench.loop(), bench.clients));
  }

  PrintTitle("Fig. 17a: trace-replay mean latency (ms)");
  PrintTableHeader({"system", "PUT", "DEL", "ALL"});
  for (const auto& [name, r] : rows) {
    std::printf("%-18s%-18.2f%-18.2f%-18.2f\n", name.c_str(), r.put_ms, r.del_ms, r.all_ms);
  }
  PrintTitle("Fig. 17b: trace-replay throughput (req/sec)");
  PrintTableHeader({"system", "ALL"});
  for (const auto& [name, r] : rows) {
    std::printf("%-18s%-18.0f\n", name.c_str(), r.tput);
  }
  DumpObsJson("fig17_trace_replay");
  return 0;
}
