// Resize under fire: double the cluster (meta + data machines) and then
// drain one of the original meta servers, all while an open-loop foreground
// workload keeps firing at a fixed offered rate. Self-asserting:
//
//   1. zero failed foreground ops in every phase,
//   2. foreground p99 during the resize stays within 2x of steady state
//      (the paper's zero-data-movement expansion plus this PR's live
//      migration + fast stale-view redirect are what make this hold),
//   3. the drain completes (node retired, no migration state left behind),
//   4. a full post-resize audit reads back every object ever acked.
//
// CHEETAH_RESIZE_SMOKE=1 shrinks the run for CI (scripts/check.sh).
#include <cstdlib>

#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

struct Phase {
  const char* name;
  workload::RunnerResults results;
};

// Open-loop 80/20 get/put mix over the preloaded names; acked put names are
// appended to `acked_puts` for the final audit.
workload::RunnerResults RunOpenLoop(
    CheetahBench& bench, const std::vector<std::string>& names,
    const std::string& put_prefix, double offered_ops_per_sec, Nanos duration,
    uint64_t seed, std::vector<std::string>* acked_puts) {
  workload::RunnerConfig config;
  config.total_ops = 0;
  config.duration = duration;
  config.seed = seed;
  config.arrival = workload::ArrivalMode::kOpen;
  config.offered_ops_per_sec = offered_ops_per_sec;
  workload::Runner runner(bench.loop(), bench.clients, config);
  auto next_put = std::make_shared<uint64_t>(0);
  return runner.Run(
      [&names, put_prefix, next_put](Rng& rng) {
        workload::Op op;
        if (rng.Uniform(100) < 20) {
          op.type = workload::OpType::kPut;
          op.name = put_prefix + std::to_string((*next_put)++);
          op.size = KiB(16);
        } else {
          op.type = workload::OpType::kGet;
          op.name = names[rng.Uniform(names.size())];
        }
        return op;
      },
      [acked_puts](const std::string& name) { acked_puts->push_back(name); });
}

// Reads every name exactly once (closed loop) — the audit, not a sample.
workload::RunnerResults AuditAll(CheetahBench& bench,
                                 const std::vector<std::string>& names) {
  workload::RunnerConfig config;
  config.concurrency = 32;
  config.total_ops = names.size();
  workload::Runner runner(bench.loop(), bench.clients, config);
  auto cursor = std::make_shared<size_t>(0);
  return runner.Run([&names, cursor](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kGet;
    op.name = names[(*cursor)++ % names.size()];
    return op;
  });
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  const bool smoke = std::getenv("CHEETAH_RESIZE_SMOKE") != nullptr;
  const uint64_t preload_count = smoke ? 200 : ScaledOps(1500);
  const double offered = smoke ? 250.0 : 500.0;
  const Nanos steady_span = smoke ? Seconds(2) : Seconds(4);
  const Nanos fire_span = smoke ? Seconds(6) : Seconds(10);

  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 3;
  config.pg_count = 16;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 6;
  config.lv_capacity_bytes = GiB(1);
  config.store_volume_content = false;
  auto bench = MakeCheetah(std::move(config));
  core::Testbed& bed = *bench.bed;

  auto names = workload::Preload(bench.loop(), bench.clients, "pre-",
                                 preload_count, KiB(16));
  if (names.size() != preload_count) {
    std::fprintf(stderr, "FAIL: preload acked %zu/%llu objects\n", names.size(),
                 static_cast<unsigned long long>(preload_count));
    return 1;
  }

  std::vector<std::string> acked_puts;
  Phase steady{"steady", RunOpenLoop(bench, names, "s-", offered, steady_span,
                                     11, &acked_puts)};

  // The resize storm, scheduled into the measured window: three meta adds
  // and four data adds double the cluster, then one of the original meta
  // servers is drained — all while the open-loop load keeps arriving.
  const sim::NodeId drained = bed.meta_node(1);
  bench.loop().ScheduleAfter(Millis(500), [&bed] { bed.BeginAddMetaMachine(); });
  bench.loop().ScheduleAfter(Millis(1000), [&bed] { bed.BeginAddDataMachine(2, 6); });
  bench.loop().ScheduleAfter(Millis(1500), [&bed] { bed.BeginAddMetaMachine(); });
  bench.loop().ScheduleAfter(Millis(2000), [&bed] { bed.BeginAddDataMachine(2, 6); });
  bench.loop().ScheduleAfter(Millis(2500), [&bed] { bed.BeginAddMetaMachine(); });
  bench.loop().ScheduleAfter(Millis(3000), [&bed] { bed.BeginAddDataMachine(2, 6); });
  bench.loop().ScheduleAfter(Millis(3500), [&bed] { bed.BeginAddDataMachine(2, 6); });
  bench.loop().ScheduleAfter(Millis(4000), [&bed] { bed.BeginDrainMetaMachine(1); });

  Phase fire{"resize-under-fire", RunOpenLoop(bench, names, "r-", offered,
                                              fire_span, 13, &acked_puts)};

  // Let the drain finish if the measured window ended first.
  bool retired = false;
  const Nanos drain_deadline = bench.loop().Now() + Seconds(60);
  while (bench.loop().Now() < drain_deadline) {
    const int leader = bed.LeaderManager();
    if (leader >= 0 && bed.manager(leader).topology().IsRetired(drained) &&
        bed.manager(leader).topology().migrations.empty()) {
      retired = true;
      break;
    }
    bed.RunFor(Millis(100));
  }
  uint64_t drains = 0;
  for (int i = 0; i < bed.num_managers(); ++i) {
    drains += bed.manager(i).drains_completed();
  }
  uint64_t fast_redirects = 0;
  for (int i = 0; i < bed.num_proxies(); ++i) {
    fast_redirects += bed.proxy(i).stats().fast_redirects;
  }

  // Full audit: every preloaded object plus every acked put, read back once.
  std::vector<std::string> audit_names = names;
  audit_names.insert(audit_names.end(), acked_puts.begin(), acked_puts.end());
  auto audit = AuditAll(bench, audit_names);

  PrintTitle("Resize under fire: open-loop 80/20 get/put, 16KB objects");
  PrintTableHeader({"phase", "offered/s", "done/s", "p50 ms", "p99 ms", "errors"});
  for (const Phase* p : {&steady, &fire}) {
    std::printf("%-18s%-18.0f%-18.0f%-18.3f%-18.3f%-18llu\n", p->name, offered,
                p->results.throughput.OpsPerSec(),
                p->results.all.PercentileMillis(0.50),
                p->results.all.PercentileMillis(0.99),
                static_cast<unsigned long long>(p->results.errors));
  }
  std::printf("\nmeta %d data %d after resize; drain retired=%d (completed %llu); "
              "fast redirects %llu; audit %zu objects, errors %llu, not_found %llu\n",
              bed.num_meta(), bed.num_data(), retired ? 1 : 0,
              static_cast<unsigned long long>(drains),
              static_cast<unsigned long long>(fast_redirects), audit_names.size(),
              static_cast<unsigned long long>(audit.errors),
              static_cast<unsigned long long>(audit.not_found));

  bool ok = true;
  auto require = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  require(steady.results.errors == 0, "foreground errors in steady state");
  require(fire.results.errors == 0, "foreground ops failed during the resize");
  const double p99_steady = steady.results.all.PercentileMillis(0.99);
  const double p99_fire = fire.results.all.PercentileMillis(0.99);
  if (p99_fire > 2.0 * p99_steady) {
    std::fprintf(stderr,
                 "FAIL: resize p99 %.3fms exceeds 2x steady-state p99 %.3fms\n",
                 p99_fire, p99_steady);
    ok = false;
  }
  require(retired, "drain did not retire the node (or left migration state)");
  require(drains >= 1, "no completed drain recorded");
  require(audit.errors == 0 && audit.not_found == 0,
          "post-resize audit lost or failed objects");

  DumpObsJson("resize_under_fire");
  if (!ok) {
    return 1;
  }
  std::printf("resize_under_fire: PASS (p99 %.3fms <= 2x steady %.3fms)\n",
              p99_fire, p99_steady);
  return 0;
}
