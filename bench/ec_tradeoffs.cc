// Storage-class trade-off frontier: what does each tier of the hybrid data
// path cost end to end?
//
// Four paper-shaped clusters run the same closed-loop workloads against the
// real put/get paths:
//
//   * small objects (2KiB): metadata-inlined vs 3-way replicated — the inline
//     tier must beat the replica put path on latency because it skips the
//     data-plane fan-out entirely (one MetaX round instead of write+persist).
//   * large objects (64KiB): 3-way replicated vs RS(4,2) vs RS(8,3) — objects
//     land replicated (write-then-promote), age past demote_after, a tiering
//     pass re-stripes every one of them, and gets then exercise the k-way
//     chunk read path. Storage overhead is measured from the data servers'
//     actual volume bytes, not computed from the schemes.
//
// Asserts the frontier the tiering subsystem promises: every object demotes,
// EC storage overhead stays <= 1.6x (vs ~3.0x for replication), the inline
// put path is strictly faster than the replica put path, and no operation
// errors anywhere. Exits non-zero otherwise; CHEETAH_EC_SMOKE=1 shrinks every
// dimension so scripts/check.sh can run it as the `ec` tier's bench smoke.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/tier/engine.h"

namespace cheetah::bench {
namespace {

using core::MetaServer;
using core::Testbed;

bool Smoke() { return std::getenv("CHEETAH_EC_SMOKE") != nullptr; }

struct EcScale {
  uint64_t small_objects;  // 2KiB puts per small-object cluster
  uint64_t small_gets;
  uint64_t large_objects;  // 64KiB puts per large-object cluster
  uint64_t large_gets;
  int concurrency;
};

EcScale PickScale() {
  if (Smoke()) {
    return {/*small_objects=*/120, /*small_gets=*/240,
            /*large_objects=*/48, /*large_gets=*/144, /*concurrency=*/8};
  }
  return {ScaledOps(600), ScaledOps(1200), ScaledOps(240), ScaledOps(720), 24};
}

core::TestbedConfig TierBenchConfig(uint32_t k, uint32_t m, uint64_t inline_threshold) {
  core::CheetahOptions options;
  options.qos.enabled = true;  // demotion + repairs ride the maintenance class
  // Cheetah-FS data plane (fig10's model): every data-server op pays the
  // file-backed journal/inode write. This is what the inline tier dodges —
  // with raw block volumes both put paths are metadata-persist-bound and the
  // inline saving shows up in IOPS, not latency.
  options.fs_backed_data = true;
  options.tier.inline_threshold = inline_threshold;
  options.tier.ec_k = k;
  options.tier.ec_m = m;
  options.tier.min_ec_object_bytes = 16384;
  options.tier.demote_after = Millis(200);
  core::TestbedConfig config = PaperCheetahConfig(options);
  // Demotion re-stripes the real payload (verified source read), so these
  // clusters must store content — object counts above stay memory-bounded.
  config.store_volume_content = true;
  // Fewer PGs and more PVs than the paper shape: stripe carving stops before
  // it starves the replica tier below one LV per PG, so every PG needs
  // (k+m) + 3-replica headroom. 9 machines x 4 disks x 10 = 360 PVs covers
  // 16 RS(8,3) stripes (176 PVs) with 61 replica LVs to spare.
  config.pg_count = 16;
  config.pvs_per_disk = 10;
  return config;
}

void TierAllNow(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->TierNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

uint64_t TotalDemotions(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    total += bed.meta(i).tier_engine().stats().demotions;
  }
  return total;
}

uint64_t TotalInlinePuts(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.num_proxies(); ++i) {
    total += bed.proxy(i).stats().inline_puts;
  }
  return total;
}

// Bytes actually sitting on the data plane: every PV's volume usage summed
// across the cluster. Inline objects contribute nothing (they live in MetaX);
// replicas contribute n copies; EC stripes contribute (k+m)/k after the
// demotion pipeline frees the replica extents.
uint64_t DataPlaneBytes(Testbed& bed) {
  const auto& topo = bed.meta(0).topology();
  uint64_t total = 0;
  for (const auto& [pv_id, pv] : topo.pvs) {
    for (int d = 0; d < bed.num_data(); ++d) {
      sim::Machine& machine = bed.data_machine(d);
      if (machine.node_id() == pv.data_server) {
        total += machine.disk(pv.disk_index).VolumeBytesUsed(pv.DeviceName());
        break;
      }
    }
  }
  return total;
}

struct Row {
  std::string scheme;
  workload::RunnerResults puts;
  workload::RunnerResults gets;
  double overhead = 0.0;       // data-plane bytes / logical bytes
  uint64_t demotions = 0;
  uint64_t inline_puts = 0;
  uint64_t objects = 0;
};

// One cluster, one scheme: put `objects` of `size` bytes, optionally demote
// everything to EC, then measure gets over the full name set.
Row RunScheme(const std::string& scheme, uint32_t k, uint32_t m,
              uint64_t inline_threshold, uint64_t size, uint64_t objects,
              uint64_t gets, int concurrency) {
  CheetahBench bench = MakeCheetah(TierBenchConfig(k, m, inline_threshold));
  Row row;
  row.scheme = scheme;
  row.objects = objects;

  const std::string prefix = scheme + "-";
  row.puts = RunPuts(bench.loop(), bench.clients, prefix, objects, size, concurrency);
  std::vector<std::string> names;
  names.reserve(objects);
  for (uint64_t i = 0; i < objects; ++i) {
    names.push_back(prefix + std::to_string(i));  // NamePool's naming scheme
  }

  if (k > 0) {
    // Write-then-promote: age every object past demote_after, then run one
    // synchronous tiering pass so the gets below hit the EC read path.
    bench.bed->RunFor(Seconds(1));
    TierAllNow(*bench.bed);
    bench.bed->RunFor(Millis(200));  // bitmap persists, discards land
  }
  row.demotions = TotalDemotions(*bench.bed);
  row.inline_puts = TotalInlinePuts(*bench.bed);
  row.overhead = static_cast<double>(DataPlaneBytes(*bench.bed)) /
                 static_cast<double>(objects * size);

  row.gets = RunGets(bench.loop(), bench.clients, names, gets, concurrency);
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-14s%-14.3f%-14.3f%-14.3f%-14.3f%-12.2f%-12llu%-12llu\n",
              row.scheme.c_str(), row.puts.put.MeanMillis(),
              row.puts.put.PercentileMillis(0.99), row.gets.get.MeanMillis(),
              row.gets.get.PercentileMillis(0.99), row.overhead,
              static_cast<unsigned long long>(row.demotions),
              static_cast<unsigned long long>(row.inline_puts));
}

int CheckRow(const Row& row) {
  int failures = 0;
  if (row.puts.errors != 0 || row.gets.errors != 0 || row.gets.not_found != 0) {
    std::fprintf(stderr, "FAIL: %s saw errors (put=%llu get=%llu not_found=%llu)\n",
                 row.scheme.c_str(), static_cast<unsigned long long>(row.puts.errors),
                 static_cast<unsigned long long>(row.gets.errors),
                 static_cast<unsigned long long>(row.gets.not_found));
    ++failures;
  }
  return failures;
}

int Run() {
  const EcScale scale = PickScale();
  PrintTitle("Storage-class frontier: inline vs replication vs erasure coding");
  std::printf("small=%llu large=%llu concurrency=%d%s\n",
              static_cast<unsigned long long>(scale.small_objects),
              static_cast<unsigned long long>(scale.large_objects), scale.concurrency,
              Smoke() ? " (smoke)" : "");

  // Small objects: the inline tier against its replica-path baseline.
  const Row inline_row =
      RunScheme("inline", /*k=*/0, /*m=*/0, /*inline_threshold=*/KiB(4), KiB(2),
                scale.small_objects, scale.small_gets, scale.concurrency);
  const Row replica_small =
      RunScheme("repl3-2k", /*k=*/0, /*m=*/0, /*inline_threshold=*/0, KiB(2),
                scale.small_objects, scale.small_gets, scale.concurrency);

  // Large objects: replication vs two EC geometries after demotion.
  const Row replica_large =
      RunScheme("repl3-64k", /*k=*/0, /*m=*/0, /*inline_threshold=*/0, KiB(64),
                scale.large_objects, scale.large_gets, scale.concurrency);
  const Row rs42 = RunScheme("rs(4,2)", 4, 2, /*inline_threshold=*/0, KiB(64),
                             scale.large_objects, scale.large_gets, scale.concurrency);
  const Row rs83 = RunScheme("rs(8,3)", 8, 3, /*inline_threshold=*/0, KiB(64),
                             scale.large_objects, scale.large_gets, scale.concurrency);

  PrintTableHeader({"scheme", "put ms", "put p99", "get ms", "get p99", "bytes x",
                    "demoted", "inline"});
  PrintRow(inline_row);
  PrintRow(replica_small);
  PrintRow(replica_large);
  PrintRow(rs42);
  PrintRow(rs83);

  DumpObsJson("ec_tradeoffs");

  int failures = 0;
  for (const Row* row : {&inline_row, &replica_small, &replica_large, &rs42, &rs83}) {
    failures += CheckRow(*row);
  }
  if (inline_row.inline_puts != inline_row.objects) {
    std::fprintf(stderr, "FAIL: only %llu of %llu small puts were inlined\n",
                 static_cast<unsigned long long>(inline_row.inline_puts),
                 static_cast<unsigned long long>(inline_row.objects));
    ++failures;
  }
  if (inline_row.puts.put.MeanMillis() >= replica_small.puts.put.MeanMillis()) {
    std::fprintf(stderr,
                 "FAIL: inline put mean %.3fms not below replica put mean %.3fms\n",
                 inline_row.puts.put.MeanMillis(), replica_small.puts.put.MeanMillis());
    ++failures;
  }
  if (inline_row.overhead != 0.0) {
    std::fprintf(stderr, "FAIL: inline objects left %.2fx bytes on the data plane\n",
                 inline_row.overhead);
    ++failures;
  }
  if (replica_large.overhead < 2.9) {
    std::fprintf(stderr, "FAIL: replica storage overhead %.2fx below 3-way expectation\n",
                 replica_large.overhead);
    ++failures;
  }
  for (const Row* row : {&rs42, &rs83}) {
    if (row->demotions != row->objects) {
      std::fprintf(stderr, "FAIL: %s demoted %llu of %llu objects\n",
                   row->scheme.c_str(), static_cast<unsigned long long>(row->demotions),
                   static_cast<unsigned long long>(row->objects));
      ++failures;
    }
    if (row->overhead > 1.6) {
      std::fprintf(stderr, "FAIL: %s storage overhead %.2fx exceeds 1.6x bound\n",
                   row->scheme.c_str(), row->overhead);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("\nPASS: inline put %.3fms < replica %.3fms; overhead repl %.2fx, "
                "rs(4,2) %.2fx, rs(8,3) %.2fx (EC bound 1.6x); %llu+%llu demotions\n",
                inline_row.puts.put.MeanMillis(), replica_small.puts.put.MeanMillis(),
                replica_large.overhead, rs42.overhead, rs83.overhead,
                static_cast<unsigned long long>(rs42.demotions),
                static_cast<unsigned long long>(rs83.demotions));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cheetah::bench

int main() { return cheetah::bench::Run(); }
