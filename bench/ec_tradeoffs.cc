// Erasure-coding trade-offs (the §8 future-work integration): storage
// overhead and loss tolerance of RS(k,m) vs n-way replication, plus host
// encode/decode throughput of the GF(2^8) codec. This quantifies what the
// paper's planned integration buys: RS(10,4) tolerates 4 losses at 1.4x
// storage where 3-way replication tolerates 2 at 3.0x.
#include <chrono>
#include <cstdio>
#include <optional>

#include "src/common/random.h"
#include "src/common/units.h"
#include "src/ec/reed_solomon.h"

namespace {

std::string RandomData(size_t n, uint64_t seed) {
  cheetah::Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

}  // namespace

int main() {
  using namespace cheetah;

  std::printf("\n=== Erasure coding vs replication (future-work ablation) ===\n");
  std::printf("%-14s%-16s%-16s%-18s%-18s\n", "scheme", "storage (x)", "loss tolerance",
              "encode MB/s", "rebuild MB/s");
  std::printf("%-14s%-16s%-16s%-18s%-18s\n", "------------", "--------------",
              "--------------", "----------------", "----------------");

  struct Scheme {
    const char* name;
    int k;
    int m;
  };
  const Scheme schemes[] = {{"RS(4,2)", 4, 2}, {"RS(6,3)", 6, 3}, {"RS(10,4)", 10, 4}};
  const size_t object_size = MiB(4);
  const std::string data = RandomData(object_size, 0xec);

  // Replication rows (no computation: the "codec" is memcpy).
  std::printf("%-14s%-16.1f%-16d%-18s%-18s\n", "3-replica", 3.0, 2, "(memcpy)", "(copy)");

  for (const Scheme& s : schemes) {
    ec::ReedSolomon rs(s.k, s.m);

    // Encode throughput (wall clock on the host).
    const auto t0 = std::chrono::steady_clock::now();
    auto shards = rs.Encode(data);
    const auto t1 = std::chrono::steady_clock::now();
    const double encode_secs = std::chrono::duration<double>(t1 - t0).count();

    // Rebuild throughput: lose m shards, reconstruct everything.
    std::vector<std::optional<std::string>> damaged(shards.begin(), shards.end());
    for (int i = 0; i < s.m; ++i) {
      damaged[i].reset();
    }
    const auto t2 = std::chrono::steady_clock::now();
    auto rebuilt = rs.Reconstruct(damaged);
    const auto t3 = std::chrono::steady_clock::now();
    const double rebuild_secs = std::chrono::duration<double>(t3 - t2).count();
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "rebuild failed for %s\n", s.name);
      return 1;
    }

    const double overhead = static_cast<double>(s.k + s.m) / s.k;
    std::printf("%-14s%-16.2f%-16d%-18.0f%-18.0f\n", s.name, overhead, s.m,
                static_cast<double>(object_size) / 1e6 / encode_secs,
                static_cast<double>(object_size) / 1e6 / rebuild_secs);
  }
  std::printf(
      "\nNote: rebuild of a single lost shard moves k shards over the network\n"
      "(vs 1 for replication) — the classic EC repair-bandwidth trade-off the\n"
      "paper's future work must weigh against the 2.1x storage saving.\n");
  return 0;
}
