// Fig. 9: the impact of removing distributed ordering. Cheetah-OW's proxies
// must wait for the MetaX-persistence ack before sending data to the data
// servers (Fig. 1 style ordering); stock Cheetah overlaps the two (Fig. 2).
// The paper reports up to ~40% throughput loss from ordering while the
// system is not saturated.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 9: PUT throughput, Cheetah vs Cheetah-OW (ordered writes)");
  PrintTableHeader({"cell", "Cheetah", "Cheetah-OW", "OW/Cheetah"});
  for (const auto& [size, size_label] :
       std::vector<std::pair<uint64_t, const char*>>{{KiB(8), "8KB"}, {KiB(64), "64KB"}}) {
    for (int concurrency : {20, 100, 500}) {
      const uint64_t ops = ScaledOps(4000);
      const std::string prefix =
          std::string(size_label) + "-" + std::to_string(concurrency) + "-";
      double base = 0, ow = 0;
      {
        auto bench = MakeCheetah();
        base = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency)
                   .throughput.OpsPerSec();
      }
      {
        core::CheetahOptions options;
        options.ordered_writes = true;
        auto bench = MakeCheetah(PaperCheetahConfig(options));
        ow = RunPuts(bench.loop(), bench.clients, prefix, ops, size, concurrency)
                 .throughput.OpsPerSec();
      }
      std::printf("%-18s%-18.0f%-18.0f%-18.2f\n",
                  (std::string(size_label) + "-" + std::to_string(concurrency)).c_str(),
                  base, ow, base > 0 ? ow / base : 0.0);
      std::fflush(stdout);
    }
  }
  DumpObsJson("fig9_ordering");
  return 0;
}
