// Fig. 15: meta-server crash recovery. Write 8KB objects at concurrency 100
// for 10 virtual seconds, disconnect one of the meta machines, connect a
// replacement, and track how many MetaX KVs the replacement has recovered
// over time. The paper shows full recovery within a few seconds.
#include "bench/bench_util.h"

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  auto bench = MakeCheetah();
  // Load with 8KB puts at concurrency 100 (a scaled stand-in for the
  // paper's 10-second loading phase).
  workload::RunnerConfig config;
  config.concurrency = 100;
  config.total_ops = ScaledOps(30000);
  workload::Runner runner(bench.loop(), bench.clients, config);
  auto pool = std::make_shared<workload::NamePool>("rec-");
  auto results = runner.Run([pool](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kPut;
    op.name = pool->NextName();
    op.size = KiB(8);
    return op;
  });
  std::fprintf(stderr, "loaded %llu objects\n",
               static_cast<unsigned long long>(results.put.count()));

  // Disconnect meta machine 0; a fresh machine replaces it.
  bench.bed->CrashMetaMachine(0, /*power_loss=*/false);
  const Nanos t0 = bench.loop().Now();
  // settle=false: return as soon as the view change commits so the sampling
  // below observes the PG transfer in progress.
  auto added = bench.bed->AddMetaMachine(/*settle=*/false);
  if (!added.ok()) {
    std::fprintf(stderr, "replacement failed: %s\n", added.status().ToString().c_str());
    return 1;
  }
  const int new_idx = *added;

  PrintTitle("Fig. 15: MetaX KVs recovered to the replacement meta server over time");
  PrintTableHeader({"time (s)", "recovered KVs"});
  uint64_t last = ~0ull;
  int stable = 0;
  for (int tick = 0; tick < 600; ++tick) {
    const double t = static_cast<double>(bench.loop().Now() - t0) / 1e9;
    const uint64_t recovered = bench.bed->meta(new_idx).stats().recovered_kvs;
    std::printf("%-18.1f%-18llu\n", t, static_cast<unsigned long long>(recovered));
    if (recovered == last && recovered > 0 && ++stable > 80) {
      break;  // plateaued for ~0.8s: recovery complete
    }
    if (recovered != last) {
      stable = 0;
    }
    last = recovered;
    bench.bed->RunFor(Millis(10));
  }
  DumpObsJson("fig15_meta_recovery");
  return 0;
}
