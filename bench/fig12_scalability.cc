// Fig. 12: meta-service scalability. m = 3/6/9/12 meta machines; the data
// path is made free (near-zero-latency "pseudo data servers" that just ack)
// so the meta service is the only bottleneck; m client groups saturate it
// with 8KB puts. The paper shows near-linear aggregate throughput, with RAM
// disks as the upper bound.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

double Measure(int meta_machines, bool ram_disk) {
  core::TestbedConfig config = PaperCheetahConfig();
  config.meta_machines = meta_machines;
  config.proxies = meta_machines;  // m client groups
  config.data_machines = 9;
  // Pseudo data servers: acknowledge instantly.
  config.data_disk = sim::DiskParams{.write_base = 0,
                                     .write_bw_bytes_per_sec = 1e15,
                                     .read_base = 0,
                                     .read_bw_bytes_per_sec = 1e15,
                                     .fsync_base = 0,
                                     .channels = 64};
  if (ram_disk) {
    config.meta_disk = sim::DiskParams::RamDisk();
  }
  config.pg_count = std::max(64, meta_machines * 16);
  // lvs = data_machines*disks*pvs/replication must cover pg_count.
  config.pvs_per_disk =
      (config.pg_count * config.replication + (9 * 4) - 1) / (9 * 4) + 1;
  auto bench = MakeCheetah(std::move(config));
  auto r = RunPuts(bench.loop(), bench.clients, "scale-", ScaledOps(8000), KiB(8),
                   meta_machines * 500);
  return r.throughput.OpsPerSec();
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 12: meta-service aggregate throughput (req/sec)");
  PrintTableHeader({"meta machines", "SSD", "RAM disk"});
  for (int m : {3, 6, 9, 12}) {
    const double ssd = Measure(m, false);
    const double ram = Measure(m, true);
    std::printf("%-18d%-18.0f%-18.0f\n", m, ssd, ram);
    std::fflush(stdout);
  }
  DumpObsJson("fig12_scalability");
  return 0;
}
