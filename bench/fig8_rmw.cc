// Fig. 8: read-modify-write as the substitute for overwrites (§4.3.1): read
// an object, delete it, and put it again with a new value. Cheetah's single
// meta round trip per phase and compaction-free delete keep it ahead of
// Haystack across cells.
#include "bench/bench_util.h"

namespace cheetah::bench {
namespace {

workload::RunnerResults RunRmw(
    sim::EventLoop& loop, std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
    std::shared_ptr<std::vector<std::string>> names, uint64_t ops, uint64_t size,
    int concurrency) {
  // Each worker repeatedly picks a distinct object and performs get + delete
  // + put as one logical operation, expressed through a wrapper store whose
  // Put chains all three.
  workload::RunnerConfig config;
  config.concurrency = concurrency;
  config.total_ops = ops;
  struct RmwStore : workload::ObjectStore {
    workload::ObjectStore* inner;
    sim::Task<Status> Put(std::string name, std::string data) override {
      auto got = co_await inner->Get(name);
      if (!got.ok()) {
        co_return got.status();
      }
      Status d = co_await inner->Delete(name);
      if (!d.ok()) {
        co_return d;
      }
      co_return co_await inner->Put(std::move(name), std::move(data));
    }
    sim::Task<Result<std::string>> Get(std::string name) override {
      return inner->Get(std::move(name));
    }
    sim::Task<Status> Delete(std::string name) override {
      return inner->Delete(std::move(name));
    }
  };
  static std::vector<std::unique_ptr<RmwStore>> wrappers;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> wrapped;
  for (auto& [actor, store] : clients) {
    wrappers.push_back(std::make_unique<RmwStore>());
    wrappers.back()->inner = store;
    wrapped.emplace_back(actor, wrappers.back().get());
  }
  workload::Runner rmw_runner(loop, std::move(wrapped), config);
  auto cursor = std::make_shared<size_t>(0);
  return rmw_runner.Run([names, cursor, size](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kPut;
    op.name = (*names)[(*cursor)++ % names->size()];
    op.size = size;
    return op;
  });
}

}  // namespace
}  // namespace cheetah::bench

int main() {
  using namespace cheetah;
  using namespace cheetah::bench;

  PrintTitle("Fig. 8: read-modify-write throughput (req/sec)");
  PrintTableHeader({"cell", "Cheetah", "Haystack"});
  for (const auto& [size, size_label] :
       std::vector<std::pair<uint64_t, const char*>>{{KiB(8), "8KB"}, {KiB(64), "64KB"}}) {
    for (int concurrency : {20, 100, 500}) {
      const uint64_t preload = ScaledOps(4000);
      const uint64_t ops = ScaledOps(1500);
      double cheetah_tput = 0, haystack_tput = 0;
      {
        auto bench = MakeCheetah();
        auto names = std::make_shared<std::vector<std::string>>(workload::Preload(
            bench.loop(), bench.clients, "rmw-", preload, size));
        auto r = RunRmw(bench.loop(), bench.clients, names, ops, size, concurrency);
        cheetah_tput = r.throughput.OpsPerSec();
      }
      {
        auto bench = MakeHaystack();
        auto names = std::make_shared<std::vector<std::string>>(workload::Preload(
            bench.loop(), bench.clients, "rmw-", preload, size));
        auto r = RunRmw(bench.loop(), bench.clients, names, ops, size, concurrency);
        haystack_tput = r.throughput.OpsPerSec();
      }
      std::printf("%-18s%-18.0f%-18.0f\n",
                  (std::string(size_label) + "-" + std::to_string(concurrency)).c_str(),
                  cheetah_tput, haystack_tput);
      std::fflush(stdout);
    }
  }
  DumpObsJson("fig8_rmw");
  return 0;
}
