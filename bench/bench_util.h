// Shared helpers for the per-figure benchmark binaries.
//
// Every bench builds paper-shaped clusters (3 meta / 9 data / 3 client
// machines unless the experiment says otherwise), drives them with the
// closed-loop runner, and prints rows mirroring the paper's figures. Object
// counts are scaled down from the paper's 10M-object testbed runs; set
// CHEETAH_BENCH_SCALE (default 1.0) to grow or shrink every run
// proportionally. Payload bytes are not stored (metadata-only volumes), so
// runs stay memory-bounded while all latency/bandwidth accounting is intact.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/ceph.h"
#include "src/baselines/haystack.h"
#include "src/baselines/tectonic.h"
#include "src/core/testbed.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/adapters.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"

namespace cheetah::bench {

inline double Scale() {
  if (const char* env = std::getenv("CHEETAH_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 1.0;
}

inline uint64_t ScaledOps(uint64_t base) {
  const double s = Scale();
  return std::max<uint64_t>(50, static_cast<uint64_t>(static_cast<double>(base) * s));
}

// ---- cluster bundles exposing runner-compatible client lists ----

struct CheetahBench {
  std::unique_ptr<core::Testbed> bed;
  std::vector<std::unique_ptr<workload::CheetahStore>> stores;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;

  sim::EventLoop& loop() { return bed->loop(); }
};

inline core::TestbedConfig PaperCheetahConfig(core::CheetahOptions options = {}) {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 9;
  config.proxies = 3;
  config.pg_count = 64;
  config.disks_per_data_machine = 4;
  config.pvs_per_disk = 6;
  config.lv_capacity_bytes = GiB(8);
  config.options = options;
  config.store_volume_content = false;
  return config;
}

inline CheetahBench MakeCheetah(core::TestbedConfig config = PaperCheetahConfig()) {
  CheetahBench bench;
  bench.bed = std::make_unique<core::Testbed>(std::move(config));
  Status s = bench.bed->Boot();
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: cheetah boot failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < bench.bed->num_proxies(); ++i) {
    bench.stores.push_back(std::make_unique<workload::CheetahStore>(&bench.bed->proxy(i)));
    bench.clients.emplace_back(&bench.bed->proxy_machine(i).actor(),
                               bench.stores.back().get());
  }
  return bench;
}

struct HaystackBench {
  std::unique_ptr<sim::EventLoop> loop_holder;
  std::unique_ptr<baselines::HaystackCluster> cluster;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;

  sim::EventLoop& loop() { return cluster->loop(); }
};

inline baselines::HaystackConfig PaperHaystackConfig() {
  baselines::HaystackConfig config;
  config.store_machines = 9;
  config.client_machines = 3;
  config.volumes_per_store = 8;
  config.volume_capacity = GiB(8);
  config.store_volume_content = false;
  return config;
}

inline HaystackBench MakeHaystack(
    baselines::HaystackConfig config = PaperHaystackConfig()) {
  HaystackBench bench;
  bench.loop_holder = std::make_unique<sim::EventLoop>();
  bench.cluster =
      std::make_unique<baselines::HaystackCluster>(*bench.loop_holder, std::move(config));
  Status s = bench.cluster->Boot();
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: haystack boot failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < bench.cluster->num_clients(); ++i) {
    bench.clients.emplace_back(&bench.cluster->client_actor(i), &bench.cluster->client(i));
  }
  return bench;
}

struct TectonicBench {
  std::unique_ptr<sim::EventLoop> loop_holder;
  std::unique_ptr<baselines::TectonicCluster> cluster;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;

  sim::EventLoop& loop() { return cluster->loop(); }
};

inline TectonicBench MakeTectonic() {
  baselines::TectonicConfig config;
  config.store_machines = 9;
  config.client_machines = 3;
  config.store_volume_content = false;
  TectonicBench bench;
  bench.loop_holder = std::make_unique<sim::EventLoop>();
  bench.cluster =
      std::make_unique<baselines::TectonicCluster>(*bench.loop_holder, std::move(config));
  Status s = bench.cluster->Boot();
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: tectonic boot failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < bench.cluster->num_clients(); ++i) {
    bench.clients.emplace_back(&bench.cluster->client_actor(i), &bench.cluster->client(i));
  }
  return bench;
}

struct CephBench {
  std::unique_ptr<sim::EventLoop> loop_holder;
  std::unique_ptr<baselines::CephCluster> cluster;
  std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients;

  sim::EventLoop& loop() { return cluster->loop(); }
};

inline baselines::CephConfig PaperCephConfig() {
  baselines::CephConfig config;
  config.osd_machines = 9;
  config.client_machines = 3;
  config.pg_count = 64;
  config.store_volume_content = false;
  return config;
}

inline CephBench MakeCeph(baselines::CephConfig config = PaperCephConfig()) {
  CephBench bench;
  bench.loop_holder = std::make_unique<sim::EventLoop>();
  bench.cluster =
      std::make_unique<baselines::CephCluster>(*bench.loop_holder, std::move(config));
  Status s = bench.cluster->Boot();
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: ceph boot failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < bench.cluster->num_clients(); ++i) {
    bench.clients.emplace_back(&bench.cluster->client_actor(i), &bench.cluster->client(i));
  }
  return bench;
}

// ---- canned workloads ----

// Puts `ops` objects of `size` bytes at the given concurrency.
inline workload::RunnerResults RunPuts(
    sim::EventLoop& loop, std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
    const std::string& prefix, uint64_t ops, uint64_t size, int concurrency) {
  workload::RunnerConfig config;
  config.concurrency = concurrency;
  config.total_ops = ops;
  workload::Runner runner(loop, std::move(clients), config);
  auto pool = std::make_shared<workload::NamePool>(prefix);
  return runner.Run([pool, size](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kPut;
    op.name = pool->NextName();
    op.size = size;
    return op;
  });
}

// Gets `ops` objects uniformly at random from `names`.
inline workload::RunnerResults RunGets(
    sim::EventLoop& loop, std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
    const std::vector<std::string>& names, uint64_t ops, int concurrency) {
  workload::RunnerConfig config;
  config.concurrency = concurrency;
  config.total_ops = ops;
  workload::Runner runner(loop, std::move(clients), config);
  return runner.Run([&names](Rng& rng) {
    workload::Op op;
    op.type = workload::OpType::kGet;
    op.name = names[rng.Uniform(names.size())];
    return op;
  });
}

// Deletes `ops` distinct objects sampled from `names` (consumed in order
// after a deterministic shuffle).
inline workload::RunnerResults RunDeletes(
    sim::EventLoop& loop, std::vector<std::pair<sim::Actor*, workload::ObjectStore*>> clients,
    std::vector<std::string> names, uint64_t ops, int concurrency) {
  Rng rng(0xde1);
  for (size_t i = names.size(); i > 1; --i) {
    std::swap(names[i - 1], names[rng.Uniform(i)]);
  }
  names.resize(std::min<size_t>(names.size(), ops));
  workload::RunnerConfig config;
  config.concurrency = concurrency;
  config.total_ops = names.size();
  workload::Runner runner(loop, std::move(clients), config);
  auto cursor = std::make_shared<size_t>(0);
  auto list = std::make_shared<std::vector<std::string>>(std::move(names));
  return runner.Run([cursor, list](Rng&) {
    workload::Op op;
    op.type = workload::OpType::kDelete;
    op.name = (*list)[(*cursor)++ % list->size()];
    return op;
  });
}

// ---- observability ----

// Drops all previously recorded spans and starts tracing. Call after warm-up
// so the first measured op is not polluted by boot-time RPCs.
inline void EnableTracing() {
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().set_enabled(true);
}

inline void DisableTracing() { obs::Tracer::Global().set_enabled(false); }

// Writes "obs/<name>.obs.json" under the working directory: the full metrics
// registry and (if any spans were recorded) the trace, machine-readable. The
// obs/ directory is gitignored — these are run artifacts, not sources.
inline void DumpObsJson(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("obs", ec);
  const std::string path = "obs/" + name + ".obs.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"metrics\":" << obs::Registry::Global().ToJson();
  const auto& tracer = obs::Tracer::Global();
  if (!tracer.spans().empty()) {
    out << ",\"trace\":" << tracer.ToJson();
  }
  out << "}\n";
  std::printf("[obs] wrote %s\n", path.c_str());
}

// ---- output ----

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintTableHeader(const std::vector<std::string>& cols) {
  for (const auto& c : cols) {
    std::printf("%-18s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%-18s", "---------------");
  }
  std::printf("\n");
}

}  // namespace cheetah::bench

#endif  // BENCH_BENCH_UTIL_H_
