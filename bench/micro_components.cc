// Host-CPU microbenchmarks (google-benchmark) of the hot single-node
// components: CRC-32C, CRUSH selection, the bitmap allocator, MetaX
// encode/decode, and KV write-batch encoding. These measure real wall-clock
// cost on the build machine, unlike the virtual-time cluster benches.
#include <benchmark/benchmark.h>

#include "src/alloc/bitmap_allocator.h"
#include "src/common/crc32c.h"
#include "src/common/random.h"
#include "src/core/metax.h"
#include "src/crush/crush.h"
#include "src/kv/write_batch.h"

namespace cheetah {
namespace {

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536)->Arg(524288);

void BM_CrushSelect(benchmark::State& state) {
  crush::Map map;
  for (int i = 0; i < state.range(0); ++i) {
    map.AddItem(100 + i);
  }
  uint32_t pg = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Select(pg++ % 256, 3));
  }
}
BENCHMARK(BM_CrushSelect)->Arg(3)->Arg(12)->Arg(48);

void BM_BitmapAllocate(benchmark::State& state) {
  alloc::BitmapAllocator allocator(1 << 20, 4096);
  std::vector<std::vector<alloc::Extent>> held;
  for (auto _ : state) {
    auto extents = allocator.Allocate(static_cast<uint64_t>(state.range(0)));
    if (!extents.ok()) {
      for (auto& e : held) {
        allocator.Free(e);
      }
      held.clear();
      continue;
    }
    held.push_back(std::move(*extents));
  }
}
BENCHMARK(BM_BitmapAllocate)->Arg(8192)->Arg(65536)->Arg(524288);

void BM_ObMetaEncodeDecode(benchmark::State& state) {
  core::ObMeta meta;
  meta.lvid = 42;
  meta.extents = {{1000, 16}, {5000, 8}};
  meta.checksum = 0xdeadbeef;
  meta.size = 65536;
  for (auto _ : state) {
    auto decoded = core::ObMeta::Decode(meta.Encode());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ObMetaEncodeDecode);

void BM_WriteBatchEncode(benchmark::State& state) {
  kv::WriteBatch batch;
  batch.Put(core::ObMetaKey(7, "object-123456"), std::string(64, 'v'));
  batch.Put(core::PgLogKey(7, 12345), std::string(48, 'l'));
  batch.Put(core::PxLogKey(3, 999), std::string(48, 'p'));
  for (auto _ : state) {
    auto decoded = kv::WriteBatch::Decode(batch.Encode());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WriteBatchEncode);

void BM_NameToPg(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> names;
  for (int i = 0; i < 1024; ++i) {
    names.push_back("object-" + std::to_string(rng.Next()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crush::Map::NameToPg(names[i++ % names.size()], 200));
  }
}
BENCHMARK(BM_NameToPg);

}  // namespace
}  // namespace cheetah

BENCHMARK_MAIN();
